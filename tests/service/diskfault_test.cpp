// Service disk-fault classification tests.
//
// A disk fault is a distinct failure class: unlike a stall or a
// transient infrastructure hiccup, ENOSPC fails every retry
// identically, so the server must park the job in the terminal
// FAILED_DISK state after ONE attempt, carry the errno in the status,
// and count it separately from ordinary failures. The fault-injecting
// IoBackend plugs straight into ServerConfig, so the whole artifact
// write-out path (journal streaming, atomic .cyp/.cyj renames, ledger
// appends) runs against the failing disk.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <filesystem>

#include "service/server.hpp"
#include "support/io.hpp"
#include "support/thread_pool.hpp"

namespace cypress::service {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  // pid suffix: parallel ctest runs each case in its own process.
  const std::string dir =
      (fs::temp_directory_path() / (name + "." + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  return dir;
}

JobSpec runSpec() {
  JobSpec s;
  s.kind = JobKind::Run;
  s.target = "JACOBI";
  s.procs = 4;
  s.maxAttempts = 3;  // would retry, if the server let a disk fault retry
  return s;
}

JobStatus awaitTerminal(JobServer& server, uint64_t id) {
  auto st = server.wait(id, 120'000);
  EXPECT_TRUE(st.has_value());
  EXPECT_TRUE(st && isTerminal(st->state));
  return st.value_or(JobStatus{});
}

TEST(ServiceDiskFault, EnospcOnArtifactIsTerminalAfterOneAttempt) {
  ThreadPool::configureShared(2);
  // The first write of the job's .cyp artifact sees a full disk.
  io::FaultyIoBackend faulty(io::realIo(),
                             {io::parseIoFaultSpec("enospc@1:.cyp.tmp")});
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_enospc");
  cfg.backoffBaseMs = 5;
  cfg.io = &faulty;
  JobServer server(cfg);
  server.start();

  const auto r = server.submit(runSpec(), /*clientId=*/1);
  ASSERT_TRUE(r.accepted) << r.message;
  const JobStatus st = awaitTerminal(server, r.jobId);

  EXPECT_EQ(st.state, JobState::FailedDisk);
  EXPECT_EQ(st.errnoValue, static_cast<uint32_t>(ENOSPC));
  EXPECT_TRUE(io::isDiskFull(static_cast<int>(st.errnoValue)));
  EXPECT_EQ(st.attempts, 1u) << "disk faults must not burn retries";
  EXPECT_NE(st.detail.find("ENOSPC"), std::string::npos) << st.detail;

  const Counters c = server.counters();
  EXPECT_EQ(c.failedDisk, 1u);
  EXPECT_EQ(c.failed, 0u) << "disk faults are their own class";
  EXPECT_EQ(c.retries, 0u);
  server.stop();
}

TEST(ServiceDiskFault, EioOnJournalStreamIsTerminalToo) {
  ThreadPool::configureShared(2);
  // The journal streams to <spool>/job-N.cyj.partial during the run;
  // fail its third durable append.
  io::FaultyIoBackend faulty(io::realIo(),
                             {io::parseIoFaultSpec("eio@3:.cyj.partial")});
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_eio");
  cfg.backoffBaseMs = 5;
  cfg.io = &faulty;
  JobServer server(cfg);
  server.start();

  const auto r = server.submit(runSpec(), /*clientId=*/1);
  ASSERT_TRUE(r.accepted) << r.message;
  const JobStatus st = awaitTerminal(server, r.jobId);

  EXPECT_EQ(st.state, JobState::FailedDisk);
  EXPECT_EQ(st.errnoValue, static_cast<uint32_t>(EIO));
  EXPECT_EQ(st.attempts, 1u);
  EXPECT_EQ(server.counters().failedDisk, 1u);
  server.stop();
}

TEST(ServiceDiskFault, HealthyDiskStillCompletes) {
  // Same config shape, no faults: the IoBackend seam itself must not
  // change behaviour.
  ThreadPool::configureShared(2);
  io::FaultyIoBackend faulty(io::realIo(), {});
  ServerConfig cfg;
  cfg.spoolDir = freshDir("cyp_service_healthy");
  cfg.io = &faulty;
  JobServer server(cfg);
  server.start();

  const auto r = server.submit(runSpec(), /*clientId=*/1);
  ASSERT_TRUE(r.accepted) << r.message;
  const JobStatus st = awaitTerminal(server, r.jobId);
  EXPECT_EQ(st.state, JobState::Done) << st.detail;
  EXPECT_EQ(st.errnoValue, 0u);
  EXPECT_GT(faulty.writesSeen(), 0u) << "artifacts must flow through cfg.io";
  EXPECT_TRUE(fs::exists(st.artifactPath));
  server.stop();
}

TEST(ServiceDiskFault, FailedDiskStateIsWireStable) {
  // The new CYS1 state and errno field round-trip the protocol.
  EXPECT_TRUE(isTerminal(JobState::FailedDisk));
  EXPECT_STREQ(toString(JobState::FailedDisk), "FAILED_DISK");

  JobStatus st;
  st.id = 9;
  st.state = JobState::FailedDisk;
  st.attempts = 1;
  st.detail = "io: write spool/job-9.cyp.tmp failed";
  st.errnoValue = ENOSPC;
  ByteWriter w;
  st.serialize(w);
  ByteReader r(w.bytes());
  const JobStatus back = JobStatus::deserialize(r);
  EXPECT_EQ(back.state, JobState::FailedDisk);
  EXPECT_EQ(back.errnoValue, static_cast<uint32_t>(ENOSPC));

  Response resp;
  resp.code = ResponseCode::Error;
  resp.message = "disk full";
  resp.errnoValue = ENOSPC;
  const Response rback = Response::decode(resp.encode());
  EXPECT_EQ(rback.errnoValue, static_cast<uint32_t>(ENOSPC));
}

}  // namespace
}  // namespace cypress::service
