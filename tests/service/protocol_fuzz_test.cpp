// Seeded protocol fuzzer for the cyptraced socket framing.
//
// The contract under test, end to end: a Session confronted with
// arbitrary bytes — truncation at every byte, flipped CRCs, oversized
// length prefixes, random garbage — answers with a clean framed Error
// (or valid responses for the intact prefix) and closes; it never
// crashes, hangs, or throws out of consume(). The message decoders
// underneath are additionally held to the trace-deserializer contract
// via the shared corruption fuzzer: cypress::Error or clean decode,
// nothing else.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "verify/fuzz.hpp"

namespace cypress::service {
namespace {

namespace fs = std::filesystem;

/// A server the fuzzer can hammer cheaply: admission refuses every job
/// (capacity 0) and the dispatcher never starts, so a mutant that
/// happens to decode as a valid Submit costs a REJECTED_BUSY, not a
/// traced run.
struct FuzzServer {
  FuzzServer() {
    // pid suffix: parallel ctest runs each case in its own process, and
    // two servers racing over one spool trip the ledger's fresh check.
    const std::string dir =
        (fs::temp_directory_path() /
         ("cyp_service_fuzz." + std::to_string(getpid())))
            .string();
    fs::remove_all(dir);
    ServerConfig cfg;
    cfg.spoolDir = dir;
    cfg.queueCapacity = 0;
    server = std::make_unique<JobServer>(cfg);
  }
  std::unique_ptr<JobServer> server;
};

/// The canonical healthy conversation every mutation starts from.
std::vector<uint8_t> goodStream() {
  std::vector<uint8_t> bytes;
  auto add = [&](const Request& r) {
    const auto f = encodeFrame(r.encode());
    bytes.insert(bytes.end(), f.begin(), f.end());
  };
  Request hello;
  hello.type = RequestType::Hello;
  add(hello);
  Request submit;
  submit.type = RequestType::Submit;
  submit.spec.kind = JobKind::Run;
  submit.spec.target = "JACOBI";
  submit.spec.procs = 4;
  submit.spec.faultSpecs = {"drop:1@3"};
  add(submit);
  Request status;
  status.type = RequestType::Status;
  status.jobId = 1;
  add(status);
  Request list;
  list.type = RequestType::List;
  add(list);
  Request counters;
  counters.type = RequestType::Counters;
  add(counters);
  return bytes;
}

/// Drive one mutant byte stream through a fresh Session. Asserts the
/// never-crash contract; returns the response bytes for further checks.
std::vector<uint8_t> drive(JobServer& server, std::span<const uint8_t> bytes,
                           uint64_t clientId) {
  Session session(server, clientId);
  std::vector<uint8_t> out;
  EXPECT_NO_THROW(out = session.consume(bytes));
  // Whatever came back must itself be well-framed, decodable responses
  // — the server never answers garbage with garbage.
  FrameDecoder d;
  EXPECT_NO_THROW({
    d.feed(out);
    while (auto payload = d.next()) Response::decode(*payload);
  });
  return out;
}

TEST(ProtocolFuzz, TruncationAtEveryByte) {
  FuzzServer fx;
  const auto good = goodStream();
  for (size_t len = 0; len <= good.size(); ++len) {
    drive(*fx.server, std::span<const uint8_t>(good.data(), len), len);
  }
}

TEST(ProtocolFuzz, SeededBitFlipsEverywhere) {
  FuzzServer fx;
  const auto good = goodStream();
  Rng rng(0xF1A9);
  // Every byte position, one seeded bit flip each — covers magic,
  // length, CRC, and payload bytes of every frame in the stream.
  for (size_t i = 0; i < good.size(); ++i) {
    auto mutant = good;
    mutant[i] ^= static_cast<uint8_t>(1u << rng.below(8));
    drive(*fx.server, mutant, i);
  }
}

TEST(ProtocolFuzz, FlippedCrcGetsOneErrorThenClose) {
  FuzzServer fx;
  auto mutant = goodStream();
  mutant[8] ^= 0x01;  // first frame's CRC field
  Session session(*fx.server, 1);
  std::vector<uint8_t> out;
  EXPECT_NO_THROW(out = session.consume(mutant));
  EXPECT_TRUE(session.closed());
  FrameDecoder d;
  d.feed(out);
  const auto payload = d.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(Response::decode(*payload).code, ResponseCode::Error);
  EXPECT_FALSE(d.next().has_value()) << "responses after the error frame";
  // A closed session ignores further bytes instead of resynchronizing
  // on a corrupt stream.
  EXPECT_TRUE(session.consume(goodStream()).empty());
}

TEST(ProtocolFuzz, OversizedLengthPrefixRejectedImmediately) {
  FuzzServer fx;
  const uint32_t lens[] = {static_cast<uint32_t>(kMaxFramePayload) + 1,
                           0x7FFFFFFFu, 0xFFFFFFFFu};
  for (uint32_t len : lens) {
    std::vector<uint8_t> bytes = {'C', 'Y', 'S', '1'};
    for (int i = 0; i < 4; ++i)
      bytes.push_back(static_cast<uint8_t>(len >> (8 * i)));
    for (int i = 0; i < 4; ++i) bytes.push_back(0);
    Session session(*fx.server, 1);
    std::vector<uint8_t> out;
    EXPECT_NO_THROW(out = session.consume(bytes));
    EXPECT_TRUE(session.closed());
    FrameDecoder d;
    d.feed(out);
    EXPECT_EQ(Response::decode(*d.next()).code, ResponseCode::Error);
  }
}

TEST(ProtocolFuzz, RandomGarbageStreams) {
  FuzzServer fx;
  Rng rng(0xBADF00D);
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> garbage(rng.below(257));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.below(256));
    drive(*fx.server, garbage, static_cast<uint64_t>(round));
  }
}

TEST(ProtocolFuzz, RequestDecoderHoldsTheDeserializerContract) {
  Request submit;
  submit.type = RequestType::Submit;
  submit.spec.kind = JobKind::Run;
  submit.spec.target = "JACOBI";
  submit.spec.sourceText = "func main() { mpi_barrier(); }";
  submit.spec.procs = 8;
  submit.spec.faultSpecs = {"kill:1@5", "delay:0@2:1000"};
  const auto good = submit.encode();

  verify::FuzzOptions fo;
  fo.seed = 0x5EED;
  fo.mutations = 500;
  const auto rep = verify::corruptionFuzz(
      good, [](std::span<const uint8_t> b) { Request::decode(b); }, fo);
  EXPECT_TRUE(rep.ok()) << rep.toString();

  const auto trep = verify::truncationSweep(
      good, [](std::span<const uint8_t> b) { Request::decode(b); });
  EXPECT_TRUE(trep.ok()) << trep.toString();
}

TEST(ProtocolFuzz, ResponseDecoderHoldsTheDeserializerContract) {
  Response resp;
  resp.code = ResponseCode::JobList;
  for (int i = 0; i < 3; ++i) {
    JobStatus s;
    s.id = static_cast<uint64_t>(i + 1);
    s.state = JobState::Done;
    s.detail = "traced 6096 events on 8 ranks";
    s.artifactPath = "/spool/job-" + std::to_string(i + 1) + ".cyp";
    s.artifactBytes = 5904;
    resp.jobs.push_back(s);
  }
  const auto good = resp.encode();

  verify::FuzzOptions fo;
  fo.seed = 0x5EED2;
  fo.mutations = 500;
  const auto rep = verify::corruptionFuzz(
      good, [](std::span<const uint8_t> b) { Response::decode(b); }, fo);
  EXPECT_TRUE(rep.ok()) << rep.toString();

  const auto trep = verify::truncationSweep(
      good, [](std::span<const uint8_t> b) { Response::decode(b); });
  EXPECT_TRUE(trep.ok()) << trep.toString();
}

}  // namespace
}  // namespace cypress::service
