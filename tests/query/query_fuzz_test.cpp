// Corruption robustness of the query entry points: a trace file mutated
// at arbitrary bytes, driven through deserialize + every query kind,
// must either answer or raise cypress::Error — never crash, hang, or
// throw anything else. This is the same contract (and the same fuzzer)
// the deserializers are held to; queries extend it through the range
// arithmetic and the cursor walk.
#include <gtest/gtest.h>

#include "cypress/merge.hpp"
#include "driver/pipeline.hpp"
#include "query/cursor.hpp"
#include "query/query.hpp"
#include "verify/fuzz.hpp"

namespace cypress::query {
namespace {

std::vector<uint8_t> goodTraceBytes() {
  driver::Options opts;
  opts.procs = 6;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload("JACOBI", opts);
  return driver::mergeCypress(run).serialize();
}

TEST(QueryFuzz, MutatedTracesNeverEscapeTheErrorContract) {
  const auto good = goodTraceBytes();
  verify::FuzzOptions fo;
  fo.seed = 0xC4B8E55;
  fo.mutations = 150;
  const auto decode = [](std::span<const uint8_t> bytes) {
    cst::Tree tree;
    core::MergedCtt m = core::MergedCtt::deserializeWithTree(bytes, tree);
    // A mutant that still deserializes must still answer (or reject)
    // every query kind cleanly.
    runQuery(m, "summary");
    runQuery(m, "matrix");
    runQuery(m, "colls");
    runQuery(m, "callsites src=0 dst=1 iter=0");
  };
  const verify::FuzzReport rep = verify::corruptionFuzz(good, decode, fo);
  EXPECT_TRUE(rep.ok()) << rep.toString();
}

TEST(QueryFuzz, TruncatedTracesNeverEscapeTheErrorContract) {
  const auto good = goodTraceBytes();
  const auto decode = [](std::span<const uint8_t> bytes) {
    cst::Tree tree;
    core::MergedCtt m = core::MergedCtt::deserializeWithTree(bytes, tree);
    runQuery(m, "summary");
    // The cursor walk must hold the same line event-by-event.
    CompressedCursor cur(m, 0);
    while (!cur.done()) cur.next();
  };
  const verify::FuzzReport rep =
      verify::truncationSweep(good, decode, /*stride=*/7);
  EXPECT_TRUE(rep.ok()) << rep.toString();
}

}  // namespace
}  // namespace cypress::query
