// Determinism of the parallel query evaluators: per-rank work is dealt
// in fixed contiguous chunks and each lane owns its ranks' rows, so the
// rendered JSON must be byte-identical at any thread count (and under
// TSan this doubles as the data-race check on the shared pool path).
#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "query/query.hpp"
#include "support/thread_pool.hpp"

namespace cypress::query {
namespace {

/// MergedCtt references the CST by pointer; carry the tree along.
struct Compressed {
  std::shared_ptr<const cst::Tree> tree;
  core::MergedCtt m;
};

Compressed mergedFor(const std::string& workload, int procs) {
  driver::Options opts;
  opts.procs = procs;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload(workload, opts);
  return Compressed{run.cst, driver::mergeCypress(run)};
}

TEST(QueryParallel, ByteIdenticalAcrossThreadCounts) {
  ThreadPool::configureShared(8);
  for (const char* w : {"JACOBI", "CG"}) {
    SCOPED_TRACE(w);
    const Compressed c = mergedFor(w, 32);
    const core::MergedCtt& m = c.m;
    for (const char* q : {"summary", "hist", "matrix"}) {
      const std::string one = runQuery(m, q, 1);
      for (int threads : {2, 3, 8}) {
        EXPECT_EQ(one, runQuery(m, q, threads))
            << w << " " << q << " @" << threads << " threads";
      }
    }
  }
}

TEST(QueryParallel, MoreThreadsThanRanks) {
  ThreadPool::configureShared(8);
  const Compressed c = mergedFor("JACOBI", 3);
  EXPECT_EQ(runQuery(c.m, "matrix", 1), runQuery(c.m, "matrix", 8));
}

}  // namespace
}  // namespace cypress::query
