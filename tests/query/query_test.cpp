// Compressed-domain query engine: oracle equivalence against
// decompress-then-scan, across workloads and faulted (partial) traces.
//
// The contract under test: every answer the engine computes from the
// CTT+RSD form is byte-identical (canonical JSON) to the same analysis
// run over the fully decompressed event streams — so compressed-domain
// analysis is a pure optimization, never an approximation.
#include <gtest/gtest.h>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "query/cursor.hpp"
#include "query/engine.hpp"
#include "query/query.hpp"
#include "support/error.hpp"

namespace cypress::query {
namespace {

/// MergedCtt references the CST by pointer, so the tree must outlive
/// it — the holder carries the RunOutput's shared CST along.
struct Compressed {
  std::shared_ptr<const cst::Tree> tree;
  core::MergedCtt m;
};

Compressed mergedFor(const std::string& workload, int procs, int scale = 1) {
  driver::Options opts;
  opts.procs = procs;
  opts.scale = scale;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload(workload, opts);
  return Compressed{run.cst, driver::mergeCypress(run)};
}

/// Survivor-only expansion: one RankTrace per covered rank, in rank
/// order — decompressAll would throw on traces with lost ranks.
trace::RawTrace expandCovered(const core::MergedCtt& m) {
  trace::RawTrace t;
  const RankSet covered = coveredRanks(m);
  for (int32_t r : covered.ranks()) {
    trace::RankTrace rt;
    rt.rank = r;
    rt.events = core::decompressRank(m, r);
    t.ranks.push_back(std::move(rt));
  }
  return t;
}

/// Every query kind, engine vs oracle, as rendered-JSON byte equality.
void expectOracleEquivalence(const core::MergedCtt& m,
                             const std::string& ctx) {
  const trace::RawTrace raw = expandCovered(m);
  EXPECT_EQ(renderSummary(summary(m), m.lostRanks()),
            renderSummary(summaryFromRaw(raw), m.lostRanks()))
      << ctx;
  EXPECT_EQ(renderHistogram(histogram(m)),
            renderHistogram(histogramFromRaw(raw)))
      << ctx;
  EXPECT_EQ(renderMatrix(commMatrix(m)), renderMatrix(commMatrixFromRaw(raw)))
      << ctx;
  EXPECT_EQ(renderCollectives(collectives(m)),
            renderCollectives(collectivesFromRaw(raw)))
      << ctx;
}

TEST(QueryEngine, OracleEquivalenceAcrossWorkloads) {
  for (const char* w : {"CG", "LU", "FT", "JACOBI", "EP"}) {
    SCOPED_TRACE(w);
    const Compressed c = mergedFor(w, 16);
    expectOracleEquivalence(c.m, w);
  }
}

TEST(QueryEngine, OracleEquivalenceAtOddRankCounts) {
  // Rank-conditional subtrees (first/last rank asymmetries) exercise
  // the per-rank entry selection.
  const Compressed a = mergedFor("JACOBI", 5);
  expectOracleEquivalence(a.m, "JACOBI@5");
  const Compressed b = mergedFor("CG", 8, 2);
  expectOracleEquivalence(b.m, "CG@8x2");
}

TEST(QueryEngine, OracleEquivalenceOnFaultedTrace) {
  // A salvaged run merges only the survivors' CTTs and annotates the
  // dead set as lost. An injected kill in JACOBI cascades into every
  // rank stalling (all lost, empty coverage), so the partial merge is
  // built here the way driver::mergeCypress builds it: survivors only,
  // the dead rank excluded and marked.
  driver::Options opts;
  opts.procs = 8;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload("JACOBI", opts);
  std::vector<const core::Ctt*> ctts;
  std::vector<int> ranks;
  for (const auto& r : run.cypress) {
    if (r->rank() == 3) continue;
    ctts.push_back(&r->ctt());
    ranks.push_back(r->rank());
  }
  core::MergedCtt m = core::mergeAll(ctts, nullptr, 1, &ranks);
  RankSet lost;
  lost.insert(3);
  m.markLost(lost);
  ASSERT_FALSE(m.lostRanks().empty());

  // The engine answers for exactly the surviving coverage, and the
  // lost set is carried in the summary rendering.
  const RankSet covered = coveredRanks(m);
  for (int32_t r : m.lostRanks().ranks()) EXPECT_FALSE(covered.contains(r));
  expectOracleEquivalence(m, "faulted JACOBI");
  const std::string json = runQuery(m, "summary");
  EXPECT_NE(json.find("\"lostRanks\":[3]"), std::string::npos) << json;
}

TEST(QueryEngine, MatrixAgreesWithSummaryTotals) {
  const Compressed c = mergedFor("CG", 16);
  const core::MergedCtt& m = c.m;
  const auto rows = summary(m);
  const auto cells = commMatrix(m);
  for (const SummaryRow& row : rows) {
    uint64_t msgs = 0;
    int64_t bytes = 0;
    for (const MatrixCell& c : cells) {
      if (c.src != row.rank) continue;
      msgs += c.msgs;
      bytes += c.bytes;
    }
    EXPECT_EQ(msgs, row.sends) << "rank " << row.rank;
    EXPECT_EQ(bytes, row.sendBytes) << "rank " << row.rank;
  }
}

TEST(QueryCursor, StreamsExactlyTheDecompressedSequence) {
  const Compressed c = mergedFor("FT", 8);
  const core::MergedCtt& m = c.m;
  const RankSet covered = coveredRanks(m);
  for (int32_t r : covered.ranks()) {
    const auto events = core::decompressRank(m, r);
    CompressedCursor cur(m, r);
    size_t i = 0;
    while (!cur.done()) {
      ASSERT_LT(i, events.size()) << "rank " << r;
      EXPECT_EQ(cur.peek().toString(), events[i].toString())
          << "rank " << r << " event " << i;
      cur.next();
      ++i;
    }
    EXPECT_EQ(i, events.size()) << "rank " << r;
    EXPECT_EQ(cur.emitted(), events.size()) << "rank " << r;
  }
}

TEST(QueryCursor, CursorStateIsSmallerThanTheExpandedVector) {
  const Compressed c = mergedFor("JACOBI", 8, 4);
  const core::MergedCtt& m = c.m;
  const auto events = core::decompressRank(m, 1);
  CompressedCursor cur(m, 1);
  while (!cur.done()) cur.next();
  EXPECT_LT(cur.memoryBytes(), events.size() * sizeof(trace::Event) / 4)
      << "cursor state should stay far below the materialized stream";
}

TEST(QueryCursor, LostRankThrowsLikeDecompressRank) {
  driver::Options opts;
  opts.procs = 8;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.onStall = vm::OnStall::Salvage;
  opts.engine.faults.faults.push_back(simmpi::parseFaultSpec("kill:2@10"));
  driver::RunOutput run = driver::runWorkload("JACOBI", opts);
  core::MergedCtt m = driver::mergeCypress(run);
  ASSERT_TRUE(m.lostRanks().contains(2));
  EXPECT_THROW(core::decompressRank(m, 2), Error);
  CompressedCursor cur(m, 2);
  EXPECT_THROW(cur.done(), Error);
}

TEST(QueryCallSites, SummedOverIterationsMatchesTheMatrix) {
  // Σ_k callsites(src, dst, k).msgs over every iteration of the
  // outermost comm loop must reproduce the full matrix cell — the
  // interval arithmetic partitions the trace exactly.
  const Compressed c = mergedFor("JACOBI", 8);
  const core::MergedCtt& m = c.m;
  const int gid = defaultLoopGid(m.cst());
  ASSERT_GE(gid, 0);
  const int32_t src = 2, dst = 3;
  uint64_t cellMsgs = 0;
  int64_t cellBytes = 0;
  for (const MatrixCell& c : commMatrix(m)) {
    if (c.src == src && c.dst == dst) {
      cellMsgs = c.msgs;
      cellBytes = c.bytes;
    }
  }
  ASSERT_GT(cellMsgs, 0u);

  uint64_t msgs = 0;
  int64_t bytes = 0;
  for (uint64_t k = 0;; ++k) {
    std::vector<CallSiteHit> hits;
    try {
      hits = callSitesAt(m, src, dst, k, gid);
    } catch (const Error&) {
      break;  // iteration out of range: the loop is exhausted
    }
    for (const CallSiteHit& h : hits) {
      msgs += h.msgs;
      bytes += h.bytes * static_cast<int64_t>(h.msgs);
      EXPECT_GE(h.gid, 0);
      EXPECT_TRUE(h.op == ir::MpiOp::Send || h.op == ir::MpiOp::Isend);
    }
  }
  EXPECT_EQ(msgs, cellMsgs);
  EXPECT_EQ(bytes, cellBytes);
}

TEST(QueryCallSites, RejectsBadArguments) {
  const Compressed c = mergedFor("JACOBI", 4);
  const core::MergedCtt& m = c.m;
  EXPECT_THROW(callSitesAt(m, 0, 1, 1u << 30), Error);   // iter out of range
  EXPECT_THROW(callSitesAt(m, 0, 1, 0, 999999), Error);  // gid out of range
  EXPECT_THROW(callSitesAt(m, 0, 1, 0, 0), Error);       // root is not a loop
}

TEST(QuerySpec, GrammarRoundtripsAndRejects) {
  EXPECT_EQ(QuerySpec::parse("summary").toString(), "summary");
  EXPECT_EQ(QuerySpec::parse("histogram").toString(), "hist");
  EXPECT_EQ(QuerySpec::parse("collectives").toString(), "colls");
  EXPECT_EQ(QuerySpec::parse("callsites src=1 dst=2 iter=7 loop=4").toString(),
            "callsites src=1 dst=2 iter=7 loop=4");
  EXPECT_THROW(QuerySpec::parse("bogus"), Error);
  EXPECT_THROW(QuerySpec::parse("matrix src=1"), Error);  // no args allowed
  EXPECT_THROW(QuerySpec::parse("callsites src=1 dst=2"), Error);  // no iter
  EXPECT_THROW(QuerySpec::parse("callsites src=x dst=2 iter=0"), Error);
  EXPECT_THROW(QuerySpec::parse("callsites src=-1 dst=2 iter=0"), Error);
  EXPECT_THROW(QuerySpec::parse("callsites src=1 dst=2 iter=0 woof=3"), Error);
}

TEST(QueryRun, EndToEndJsonIsStableAcrossSerializeRoundtrip) {
  const Compressed c = mergedFor("CG", 8);
  const core::MergedCtt& m = c.m;
  const auto bytes = m.serialize();
  cst::Tree tree;
  const core::MergedCtt back = core::MergedCtt::deserializeWithTree(bytes, tree);
  for (const char* q : {"summary", "hist", "matrix", "colls"}) {
    EXPECT_EQ(runQuery(m, q), runQuery(back, q)) << q;
  }
}

}  // namespace
}  // namespace cypress::query
