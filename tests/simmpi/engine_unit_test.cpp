// Engine unit tests driving simmpi::Engine directly (no VM): message
// matching rules, request lifecycle errors, clock/timing invariants, and
// misuse detection.
#include <gtest/gtest.h>

#include "simmpi/engine.hpp"
#include "support/error.hpp"

namespace cypress::simmpi {
namespace {

OpDesc send(int dst, int64_t bytes, int tag, int site = 0) {
  OpDesc d;
  d.op = ir::MpiOp::Send;
  d.peer = dst;
  d.bytes = bytes;
  d.tag = tag;
  d.callSiteId = site;
  return d;
}

OpDesc recv(int src, int64_t bytes, int tag, int site = 1) {
  OpDesc d;
  d.op = ir::MpiOp::Recv;
  d.peer = src;
  d.bytes = bytes;
  d.tag = tag;
  d.callSiteId = site;
  return d;
}

Engine makeEngine(int ranks, double jitter = 0.0) {
  Engine::Config cfg;
  cfg.numRanks = ranks;
  cfg.jitter = jitter;
  return Engine(cfg);
}

TEST(EngineUnit, EagerSendCompletesImmediately) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(0, send(1, 1024, 0)), OpStatus::Complete);
  EXPECT_GT(e.clockNs(0), 0u);
  EXPECT_EQ(e.clockNs(1), 0u);  // receiver untouched
}

TEST(EngineUnit, RecvBlocksUntilMessageArrives) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(1, recv(0, 64, 7)), OpStatus::Blocked);
  EXPECT_EQ(e.poll(1), OpStatus::Blocked);
  EXPECT_EQ(e.execute(0, send(1, 64, 7)), OpStatus::Complete);
  EXPECT_EQ(e.poll(1), OpStatus::Complete);
}

TEST(EngineUnit, TagMismatchDoesNotMatch) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(0, send(1, 64, 1)), OpStatus::Complete);
  EXPECT_EQ(e.execute(1, recv(0, 64, 2)), OpStatus::Blocked);
  EXPECT_EQ(e.poll(1), OpStatus::Blocked);
  // The right tag arrives later and matches.
  EXPECT_EQ(e.execute(0, send(1, 64, 2)), OpStatus::Complete);
  EXPECT_EQ(e.poll(1), OpStatus::Complete);
}

TEST(EngineUnit, NonOvertakingSameTag) {
  Engine e = makeEngine(2);
  e.execute(0, send(1, 111, 0));
  e.execute(0, send(1, 222, 0));
  trace::RankTrace rt;
  trace::RawRecorder rec(rt);
  e.setObserver(1, &rec);
  EXPECT_EQ(e.execute(1, recv(0, 111, 0)), OpStatus::Complete);
  EXPECT_EQ(e.execute(1, recv(0, 222, 0)), OpStatus::Complete);
  ASSERT_EQ(rt.events.size(), 2u);
  EXPECT_EQ(rt.events[0].bytes, 111);
  EXPECT_EQ(rt.events[1].bytes, 222);
}

TEST(EngineUnit, WildcardMatchesLowestSourceNotArrivalOrder) {
  // MPI_ANY_SOURCE matching must be a function of the set of buffered
  // messages, not of the delivery schedule that built it: the lowest
  // source rank wins even when a higher rank's message arrived first.
  Engine e = makeEngine(3);
  e.execute(2, send(0, 5, 9));
  e.execute(1, send(0, 5, 9));
  trace::RankTrace rt;
  trace::RawRecorder rec(rt);
  e.setObserver(0, &rec);
  EXPECT_EQ(e.execute(0, recv(trace::kAnySource, 5, 9)), OpStatus::Complete);
  ASSERT_EQ(rt.events.size(), 1u);
  EXPECT_EQ(rt.events[0].matchedSource, 1);  // lowest source, not first arrival
}

TEST(EngineUnit, WildcardIsFifoWithinOnePair) {
  // Two wildcard receives draining two buffered same-tag messages from
  // one sender must preserve that sender's FIFO order (non-overtaking).
  // The first posted receive has room only for the first (smaller)
  // message, so matching the later, larger one instead would raise the
  // MPI_ERR_TRUNCATE check.
  Engine e = makeEngine(2);
  e.execute(1, send(0, 111, 3));
  e.execute(1, send(0, 222, 3));
  trace::RankTrace rt;
  trace::RawRecorder rec(rt);
  e.setObserver(0, &rec);
  EXPECT_EQ(e.execute(0, recv(trace::kAnySource, 111, 3)), OpStatus::Complete);
  EXPECT_EQ(e.execute(0, recv(trace::kAnySource, 222, 3)), OpStatus::Complete);
  ASSERT_EQ(rt.events.size(), 2u);
  EXPECT_EQ(rt.events[0].matchedSource, 1);
  EXPECT_EQ(rt.events[1].matchedSource, 1);
}

TEST(EngineUnit, TruncationCheckedOnTheMatchedMessageOnly) {
  // A too-large message from a *different* pair must not trip the
  // truncation check while scanning for a specific-source match.
  Engine e = makeEngine(3);
  e.execute(2, send(0, 4096, 3));  // big message, wrong source
  e.execute(1, send(0, 64, 3));
  EXPECT_EQ(e.execute(0, recv(1, 64, 3)), OpStatus::Complete);
  // But actually matching an oversized message is MPI_ERR_TRUNCATE.
  EXPECT_THROW(e.execute(0, recv(2, 64, 3)), Error);
}

TEST(EngineUnit, WildcardMatchIndependentOfDeliverySchedule) {
  // A perturbed delivery schedule (senders issuing in different orders)
  // buffers the same message set, so the wildcard receiver must produce
  // an identical matched-source sequence either way.
  auto drain = [](const std::vector<int>& sendOrder) {
    Engine e = makeEngine(4);
    for (int s : sendOrder) e.execute(s, send(0, 8, 1));
    trace::RankTrace rt;
    trace::RawRecorder rec(rt);
    e.setObserver(0, &rec);
    for (size_t i = 0; i < sendOrder.size(); ++i)
      EXPECT_EQ(e.execute(0, recv(trace::kAnySource, 8, 1)),
                OpStatus::Complete);
    std::vector<int> matched;
    for (const auto& ev : rt.events) matched.push_back(ev.matchedSource);
    return matched;
  };
  const auto a = drain({3, 1, 2});
  const auto b = drain({2, 3, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<int>{1, 2, 3}));
}

TEST(EngineUnit, IssuingWhilePendingIsAnError) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(1, recv(0, 64, 0)), OpStatus::Blocked);
  EXPECT_THROW(e.execute(1, send(0, 8, 0)), Error);
}

TEST(EngineUnit, WaitOnConsumedRequestIsAnError) {
  Engine e = makeEngine(2);
  int64_t req = -1;
  OpDesc d;
  d.op = ir::MpiOp::Isend;
  d.peer = 1;
  d.bytes = 8;
  d.tag = 0;
  ASSERT_EQ(e.execute(0, d, &req), OpStatus::Complete);
  OpDesc w;
  w.op = ir::MpiOp::Wait;
  w.waitReqId = req;
  ASSERT_EQ(e.execute(0, w), OpStatus::Complete);
  EXPECT_THROW(e.execute(0, w), Error);  // already consumed
}

TEST(EngineUnit, FinalizeWithOutstandingRequestIsAnError) {
  Engine e = makeEngine(2);
  int64_t req = -1;
  OpDesc d;
  d.op = ir::MpiOp::Irecv;
  d.peer = 0;
  d.bytes = 8;
  d.tag = 0;
  ASSERT_EQ(e.execute(1, d, &req), OpStatus::Complete);
  EXPECT_THROW(e.finalizeRank(1), Error);
}

TEST(EngineUnit, PollWithoutPendingIsAnError) {
  Engine e = makeEngine(1);
  EXPECT_THROW(e.poll(0), Error);
}

TEST(EngineUnit, SendToInvalidRankIsAnError) {
  Engine e = makeEngine(2);
  EXPECT_THROW(e.execute(0, send(5, 8, 0)), Error);
  EXPECT_THROW(e.execute(0, send(-1, 8, 0)), Error);
}

TEST(EngineUnit, ComputeAdvancesClockAndAccumulates) {
  Engine e = makeEngine(1);
  e.addCompute(0, 1000);
  e.addCompute(0, 500);
  EXPECT_EQ(e.clockNs(0), 1500u);
  trace::RankTrace rt;
  trace::RawRecorder rec(rt);
  e.setObserver(0, &rec);
  OpDesc b;
  b.op = ir::MpiOp::Barrier;
  EXPECT_EQ(e.execute(0, b), OpStatus::Complete);  // single-rank barrier
  ASSERT_EQ(rt.events.size(), 1u);
  EXPECT_EQ(rt.events[0].computeNs, 1500u);
}

TEST(EngineUnit, TransferTimeScalesWithBytes) {
  Engine e = makeEngine(2);
  e.execute(0, send(1, 1, 0));
  const uint64_t small = e.clockNs(0);
  Engine e2 = makeEngine(2);
  e2.execute(0, send(1, 1 << 20, 0));
  EXPECT_GT(e2.clockNs(0), small * 10);
}

TEST(EngineUnit, JitterIsDeterministicPerSeed) {
  Engine a = makeEngine(2, 0.1);
  Engine b = makeEngine(2, 0.1);
  a.execute(0, send(1, 4096, 0));
  b.execute(0, send(1, 4096, 0));
  EXPECT_EQ(a.clockNs(0), b.clockNs(0));
}

TEST(EngineUnit, CollectiveDurationCoversWait) {
  Engine e = makeEngine(2);
  trace::RankTrace rt0;
  trace::RawRecorder rec0(rt0);
  e.setObserver(0, &rec0);
  e.addCompute(1, 1000000);  // rank 1 arrives late
  OpDesc b;
  b.op = ir::MpiOp::Barrier;
  ASSERT_EQ(e.execute(0, b), OpStatus::Blocked);
  ASSERT_EQ(e.execute(1, b), OpStatus::Complete);
  ASSERT_EQ(e.poll(0), OpStatus::Complete);
  ASSERT_EQ(rt0.events.size(), 1u);
  // Rank 0 waited for rank 1's compute inside the barrier.
  EXPECT_GT(rt0.events[0].durationNs, 1000000u);
  EXPECT_EQ(e.clockNs(0), e.clockNs(1));
}

TEST(EngineUnit, CommWorldMembers) {
  Engine e = makeEngine(4);
  EXPECT_EQ(e.commMembers(0).size(), 4u);
  EXPECT_THROW(e.commMembers(7), Error);
}

TEST(EngineUnit, CommSplitAssignsDisjointGroups) {
  Engine e = makeEngine(4);
  auto split = [&](int rank) {
    OpDesc d;
    d.op = ir::MpiOp::CommSplit;
    d.color = rank / 2;
    d.key = rank;
    return d;
  };
  EXPECT_EQ(e.execute(0, split(0)), OpStatus::Blocked);
  EXPECT_EQ(e.execute(1, split(1)), OpStatus::Blocked);
  EXPECT_EQ(e.execute(2, split(2)), OpStatus::Blocked);
  EXPECT_EQ(e.execute(3, split(3)), OpStatus::Complete);
  const int64_t c3 = e.takeOpResult(3);
  EXPECT_EQ(e.poll(0), OpStatus::Complete);
  const int64_t c0 = e.takeOpResult(0);
  e.poll(1);
  const int64_t c1 = e.takeOpResult(1);
  e.poll(2);
  const int64_t c2 = e.takeOpResult(2);
  EXPECT_EQ(c0, c1);
  EXPECT_EQ(c2, c3);
  EXPECT_NE(c0, c2);
  EXPECT_EQ(e.commMembers(static_cast<int>(c0)),
            (std::vector<int>{0, 1}));
  EXPECT_EQ(e.commMembers(static_cast<int>(c2)),
            (std::vector<int>{2, 3}));
}

}  // namespace
}  // namespace cypress::simmpi
