// Engine unit tests driving simmpi::Engine directly (no VM): message
// matching rules, request lifecycle errors, clock/timing invariants, and
// misuse detection.
#include <gtest/gtest.h>

#include "simmpi/engine.hpp"
#include "support/error.hpp"

namespace cypress::simmpi {
namespace {

OpDesc send(int dst, int64_t bytes, int tag, int site = 0) {
  OpDesc d;
  d.op = ir::MpiOp::Send;
  d.peer = dst;
  d.bytes = bytes;
  d.tag = tag;
  d.callSiteId = site;
  return d;
}

OpDesc recv(int src, int64_t bytes, int tag, int site = 1) {
  OpDesc d;
  d.op = ir::MpiOp::Recv;
  d.peer = src;
  d.bytes = bytes;
  d.tag = tag;
  d.callSiteId = site;
  return d;
}

Engine makeEngine(int ranks, double jitter = 0.0) {
  Engine::Config cfg;
  cfg.numRanks = ranks;
  cfg.jitter = jitter;
  return Engine(cfg);
}

TEST(EngineUnit, EagerSendCompletesImmediately) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(0, send(1, 1024, 0)), OpStatus::Complete);
  EXPECT_GT(e.clockNs(0), 0u);
  EXPECT_EQ(e.clockNs(1), 0u);  // receiver untouched
}

TEST(EngineUnit, RecvBlocksUntilMessageArrives) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(1, recv(0, 64, 7)), OpStatus::Blocked);
  EXPECT_EQ(e.poll(1), OpStatus::Blocked);
  EXPECT_EQ(e.execute(0, send(1, 64, 7)), OpStatus::Complete);
  EXPECT_EQ(e.poll(1), OpStatus::Complete);
}

TEST(EngineUnit, TagMismatchDoesNotMatch) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(0, send(1, 64, 1)), OpStatus::Complete);
  EXPECT_EQ(e.execute(1, recv(0, 64, 2)), OpStatus::Blocked);
  EXPECT_EQ(e.poll(1), OpStatus::Blocked);
  // The right tag arrives later and matches.
  EXPECT_EQ(e.execute(0, send(1, 64, 2)), OpStatus::Complete);
  EXPECT_EQ(e.poll(1), OpStatus::Complete);
}

TEST(EngineUnit, NonOvertakingSameTag) {
  Engine e = makeEngine(2);
  e.execute(0, send(1, 111, 0));
  e.execute(0, send(1, 222, 0));
  trace::RankTrace rt;
  trace::RawRecorder rec(rt);
  e.setObserver(1, &rec);
  EXPECT_EQ(e.execute(1, recv(0, 111, 0)), OpStatus::Complete);
  EXPECT_EQ(e.execute(1, recv(0, 222, 0)), OpStatus::Complete);
  ASSERT_EQ(rt.events.size(), 2u);
  EXPECT_EQ(rt.events[0].bytes, 111);
  EXPECT_EQ(rt.events[1].bytes, 222);
}

TEST(EngineUnit, WildcardMatchesEarliestArrival) {
  Engine e = makeEngine(3);
  e.execute(2, send(0, 5, 9));
  e.execute(1, send(0, 5, 9));
  trace::RankTrace rt;
  trace::RawRecorder rec(rt);
  e.setObserver(0, &rec);
  EXPECT_EQ(e.execute(0, recv(trace::kAnySource, 5, 9)), OpStatus::Complete);
  ASSERT_EQ(rt.events.size(), 1u);
  EXPECT_EQ(rt.events[0].matchedSource, 2);  // rank 2 sent first
}

TEST(EngineUnit, IssuingWhilePendingIsAnError) {
  Engine e = makeEngine(2);
  EXPECT_EQ(e.execute(1, recv(0, 64, 0)), OpStatus::Blocked);
  EXPECT_THROW(e.execute(1, send(0, 8, 0)), Error);
}

TEST(EngineUnit, WaitOnConsumedRequestIsAnError) {
  Engine e = makeEngine(2);
  int64_t req = -1;
  OpDesc d;
  d.op = ir::MpiOp::Isend;
  d.peer = 1;
  d.bytes = 8;
  d.tag = 0;
  ASSERT_EQ(e.execute(0, d, &req), OpStatus::Complete);
  OpDesc w;
  w.op = ir::MpiOp::Wait;
  w.waitReqId = req;
  ASSERT_EQ(e.execute(0, w), OpStatus::Complete);
  EXPECT_THROW(e.execute(0, w), Error);  // already consumed
}

TEST(EngineUnit, FinalizeWithOutstandingRequestIsAnError) {
  Engine e = makeEngine(2);
  int64_t req = -1;
  OpDesc d;
  d.op = ir::MpiOp::Irecv;
  d.peer = 0;
  d.bytes = 8;
  d.tag = 0;
  ASSERT_EQ(e.execute(1, d, &req), OpStatus::Complete);
  EXPECT_THROW(e.finalizeRank(1), Error);
}

TEST(EngineUnit, PollWithoutPendingIsAnError) {
  Engine e = makeEngine(1);
  EXPECT_THROW(e.poll(0), Error);
}

TEST(EngineUnit, SendToInvalidRankIsAnError) {
  Engine e = makeEngine(2);
  EXPECT_THROW(e.execute(0, send(5, 8, 0)), Error);
  EXPECT_THROW(e.execute(0, send(-1, 8, 0)), Error);
}

TEST(EngineUnit, ComputeAdvancesClockAndAccumulates) {
  Engine e = makeEngine(1);
  e.addCompute(0, 1000);
  e.addCompute(0, 500);
  EXPECT_EQ(e.clockNs(0), 1500u);
  trace::RankTrace rt;
  trace::RawRecorder rec(rt);
  e.setObserver(0, &rec);
  OpDesc b;
  b.op = ir::MpiOp::Barrier;
  EXPECT_EQ(e.execute(0, b), OpStatus::Complete);  // single-rank barrier
  ASSERT_EQ(rt.events.size(), 1u);
  EXPECT_EQ(rt.events[0].computeNs, 1500u);
}

TEST(EngineUnit, TransferTimeScalesWithBytes) {
  Engine e = makeEngine(2);
  e.execute(0, send(1, 1, 0));
  const uint64_t small = e.clockNs(0);
  Engine e2 = makeEngine(2);
  e2.execute(0, send(1, 1 << 20, 0));
  EXPECT_GT(e2.clockNs(0), small * 10);
}

TEST(EngineUnit, JitterIsDeterministicPerSeed) {
  Engine a = makeEngine(2, 0.1);
  Engine b = makeEngine(2, 0.1);
  a.execute(0, send(1, 4096, 0));
  b.execute(0, send(1, 4096, 0));
  EXPECT_EQ(a.clockNs(0), b.clockNs(0));
}

TEST(EngineUnit, CollectiveDurationCoversWait) {
  Engine e = makeEngine(2);
  trace::RankTrace rt0;
  trace::RawRecorder rec0(rt0);
  e.setObserver(0, &rec0);
  e.addCompute(1, 1000000);  // rank 1 arrives late
  OpDesc b;
  b.op = ir::MpiOp::Barrier;
  ASSERT_EQ(e.execute(0, b), OpStatus::Blocked);
  ASSERT_EQ(e.execute(1, b), OpStatus::Complete);
  ASSERT_EQ(e.poll(0), OpStatus::Complete);
  ASSERT_EQ(rt0.events.size(), 1u);
  // Rank 0 waited for rank 1's compute inside the barrier.
  EXPECT_GT(rt0.events[0].durationNs, 1000000u);
  EXPECT_EQ(e.clockNs(0), e.clockNs(1));
}

TEST(EngineUnit, CommWorldMembers) {
  Engine e = makeEngine(4);
  EXPECT_EQ(e.commMembers(0).size(), 4u);
  EXPECT_THROW(e.commMembers(7), Error);
}

TEST(EngineUnit, CommSplitAssignsDisjointGroups) {
  Engine e = makeEngine(4);
  auto split = [&](int rank) {
    OpDesc d;
    d.op = ir::MpiOp::CommSplit;
    d.color = rank / 2;
    d.key = rank;
    return d;
  };
  EXPECT_EQ(e.execute(0, split(0)), OpStatus::Blocked);
  EXPECT_EQ(e.execute(1, split(1)), OpStatus::Blocked);
  EXPECT_EQ(e.execute(2, split(2)), OpStatus::Blocked);
  EXPECT_EQ(e.execute(3, split(3)), OpStatus::Complete);
  const int64_t c3 = e.takeOpResult(3);
  EXPECT_EQ(e.poll(0), OpStatus::Complete);
  const int64_t c0 = e.takeOpResult(0);
  e.poll(1);
  const int64_t c1 = e.takeOpResult(1);
  e.poll(2);
  const int64_t c2 = e.takeOpResult(2);
  EXPECT_EQ(c0, c1);
  EXPECT_EQ(c2, c3);
  EXPECT_NE(c0, c2);
  EXPECT_EQ(e.commMembers(static_cast<int>(c0)),
            (std::vector<int>{0, 1}));
  EXPECT_EQ(e.commMembers(static_cast<int>(c2)),
            (std::vector<int>{2, 3}));
}

}  // namespace
}  // namespace cypress::simmpi
