// Tests for the extended collective surface (Gather / Scatter / Scan),
// on WORLD and on split communicators, through the full pipeline.
#include <gtest/gtest.h>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "replay/simulator.hpp"
#include "trace/otf_text.hpp"

namespace cypress {
namespace {

std::vector<trace::Event> contentOnly(std::vector<trace::Event> ev) {
  for (auto& e : ev) {
    e.computeNs = 0;
    e.durationNs = 0;
  }
  return ev;
}

TEST(Collectives, GatherScatterScanExecuteAndCompress) {
  driver::Options opts;
  opts.procs = 6;
  driver::RunOutput run = driver::runSource("coll", R"(
    func main() {
      for (var i = 0; i < 5; i = i + 1) {
        mpi_scatter(0, 4096);
        compute(50000);
        mpi_scan(64);
        mpi_gather(0, 4096);
      }
    })", opts);

  const auto& ev = run.raw.ranks[3].events;
  ASSERT_EQ(ev.size(), 15u);
  EXPECT_EQ(ev[0].op, ir::MpiOp::Scatter);
  EXPECT_EQ(ev[0].peer, 0);  // root
  EXPECT_EQ(ev[1].op, ir::MpiOp::Scan);
  EXPECT_EQ(ev[2].op, ir::MpiOp::Gather);

  core::MergedCtt merged = driver::mergeCypress(run);
  for (int r = 0; r < opts.procs; ++r) {
    EXPECT_EQ(contentOnly(core::decompressRank(merged, r)),
              contentOnly(run.raw.ranks[static_cast<size_t>(r)].events));
  }
  // And they replay.
  trace::RawTrace dec = core::decompressAll(merged, opts.procs);
  EXPECT_EQ(replay::simulate(dec).totalEvents, run.raw.totalEvents());
  // And they survive the OTF text round trip.
  EXPECT_EQ(trace::fromOtfText(trace::toOtfText(run.raw)).ranks[2].events,
            run.raw.ranks[2].events);
}

TEST(Collectives, OnSplitCommunicators) {
  driver::Options opts;
  opts.procs = 8;
  driver::RunOutput run = driver::runSource("collc", R"(
    func main() {
      var c = mpi_comm_split(rank / 4, rank);
      mpi_gather_c(c, 0, 1024);
      mpi_scatter_c(c, 0, 1024);
      mpi_scan_c(c, 32);
      mpi_barrier();
    })", opts);
  // Gather root 0 means "local root" semantics are the caller's concern;
  // here every member passes the same root so the groups stay consistent.
  core::MergedCtt merged = driver::mergeCypress(run);
  for (int r = 0; r < opts.procs; ++r) {
    EXPECT_EQ(contentOnly(core::decompressRank(merged, r)),
              contentOnly(run.raw.ranks[static_cast<size_t>(r)].events));
  }
}

TEST(Collectives, RootMismatchDetected) {
  driver::Options opts;
  opts.procs = 2;
  EXPECT_THROW(driver::runSource("bad", R"(
    func main() {
      mpi_gather(rank, 64);  // every rank names a different root
    })", opts),
               Error);
}

}  // namespace
}  // namespace cypress
