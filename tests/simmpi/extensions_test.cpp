// Tests for the extended MPI surface: MPI_Waitsome partial completion
// (paper §IV-A), MPI_Comm_split + sub-communicator collectives, and the
// mpi_sendrecv sugar — each verified through the full pipeline
// (engine semantics, CYPRESS lossless round trip, SIM-MPI replay).
#include <gtest/gtest.h>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "replay/simulator.hpp"
#include "scalatrace/inter.hpp"

namespace cypress {
namespace {

std::vector<trace::Event> contentOnly(std::vector<trace::Event> ev) {
  for (auto& e : ev) {
    e.computeNs = 0;
    e.durationNs = 0;
  }
  return ev;
}

driver::RunOutput runIt(const std::string& src, int procs) {
  driver::Options opts;
  opts.procs = procs;
  return driver::runSource("ext", src, opts);
}

void expectCypressLossless(const driver::RunOutput& run) {
  core::MergedCtt merged = driver::mergeCypress(run);
  for (int r = 0; r < run.procs; ++r) {
    auto got = contentOnly(core::decompressRank(merged, r));
    auto want = contentOnly(run.raw.ranks[static_cast<size_t>(r)].events);
    ASSERT_EQ(got.size(), want.size()) << "rank " << r;
    for (size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << "rank " << r << " event " << i << "\n got "
                                 << got[i].toString() << "\nwant "
                                 << want[i].toString();
  }
}

TEST(Waitsome, CompletesAllReadyRequests) {
  auto run = runIt(R"(
    func main() {
      var a = mpi_isend((rank + 1) % size, 64, 0);
      var b = mpi_isend((rank + 1) % size, 64, 1);
      var c = mpi_irecv((rank + size - 1) % size, 64, 0);
      var d = mpi_irecv((rank + size - 1) % size, 64, 1);
      mpi_waitsome();
      mpi_waitall();
    })", 4);
  // Waitsome emits one event per completed request; at least the two
  // eager sends complete immediately.
  const auto& ev = run.raw.ranks[0].events;
  int some = 0, all = 0;
  for (const auto& e : ev) {
    if (e.op == ir::MpiOp::Waitsome) ++some;
    if (e.op == ir::MpiOp::Waitall) ++all;
  }
  EXPECT_GE(some, 2);
  EXPECT_EQ(all, 1);
  // Each Waitsome event carries the posting site of the request it
  // completed (the paper's GID recording for partial completion).
  for (const auto& e : ev) {
    if (e.op == ir::MpiOp::Waitsome) {
      EXPECT_GE(e.reqId, 0);
    }
  }
  expectCypressLossless(run);
}

TEST(Waitsome, VariableMultiplicityAcrossIterationsStaysLossless) {
  // The number of Waitsome completions per iteration can vary with
  // message timing; leaf multiplicity must replay exactly.
  auto run = runIt(R"(
    func main() {
      for (var i = 0; i < 6; i = i + 1) {
        var a = mpi_isend((rank + 1) % size, 32 + i, 0);
        var b = mpi_irecv((rank + size - 1) % size, 32 + i, 0);
        mpi_waitsome();
        mpi_waitall();
      }
    })", 3);
  expectCypressLossless(run);
}

TEST(Waitsome, ReplaySimulatesCompletions) {
  auto run = runIt(R"(
    func main() {
      var a = mpi_isend((rank + 1) % size, 2048, 0);
      var b = mpi_irecv((rank + size - 1) % size, 2048, 0);
      mpi_waitsome();
      mpi_waitall();
    })", 3);
  core::MergedCtt merged = driver::mergeCypress(run);
  trace::RawTrace dec = core::decompressAll(merged, run.procs);
  replay::Prediction p = replay::simulate(dec);
  EXPECT_EQ(p.totalEvents, run.raw.totalEvents());
}

TEST(CommSplit, RowCommunicatorsFormCorrectly) {
  auto run = runIt(R"(
    func main() {
      var rowsz = 4;
      var c = mpi_comm_split(rank / rowsz, rank % rowsz);
      mpi_allreduce_c(c, 128);
      mpi_barrier_c(c);
      mpi_barrier();
    })", 16);
  // Every rank got a valid handle; ranks in the same row share it.
  std::vector<int64_t> handle(16, -1);
  for (const auto& r : run.raw.ranks)
    for (const auto& e : r.events)
      if (e.op == ir::MpiOp::CommSplit) handle[static_cast<size_t>(r.rank)] = e.reqId;
  for (int r = 0; r < 16; ++r) {
    EXPECT_GT(handle[static_cast<size_t>(r)], 0) << "rank " << r;
    EXPECT_EQ(handle[static_cast<size_t>(r)], handle[static_cast<size_t>(r / 4 * 4)]);
  }
  // Different rows, different communicators.
  EXPECT_NE(handle[0], handle[4]);
  expectCypressLossless(run);
}

TEST(CommSplit, SubCommunicatorCollectivesOnlySyncMembers) {
  // Row 0 does many reductions; row 1 only one. Would deadlock if the
  // sub-collectives synchronized everyone.
  auto run = runIt(R"(
    func main() {
      var c = mpi_comm_split(rank / 2, rank);
      if (rank < 2) {
        for (var i = 0; i < 5; i = i + 1) { mpi_allreduce_c(c, 8); }
      } else {
        mpi_allreduce_c(c, 8);
      }
      mpi_barrier();
    })", 4);
  EXPECT_EQ(run.raw.ranks[0].events.size(), 7u);  // split + 5 + barrier
  EXPECT_EQ(run.raw.ranks[2].events.size(), 3u);
  expectCypressLossless(run);
}

TEST(CommSplit, NegativeColorGetsNoCommunicator) {
  auto run = runIt(R"(
    func main() {
      var color = 0 - 1;
      if (rank % 2 == 0) { color = 0; }
      var c = mpi_comm_split(color, rank);
      if (rank % 2 == 0) { mpi_barrier_c(c); }
      mpi_barrier();
    })", 6);
  for (const auto& r : run.raw.ranks) {
    for (const auto& e : r.events) {
      if (e.op == ir::MpiOp::CommSplit && r.rank % 2 == 1) {
        EXPECT_EQ(e.reqId, -1);
      }
    }
  }
  expectCypressLossless(run);
}

TEST(CommSplit, NestedSplitsWork) {
  auto run = runIt(R"(
    func main() {
      var half = mpi_comm_split(rank / 4, rank);     // two groups of 4
      var quarter = mpi_comm_split(rank / 2, rank);  // four groups of 2
      mpi_allreduce_c(half, 64);
      mpi_allreduce_c(quarter, 16);
      mpi_barrier();
    })", 8);
  expectCypressLossless(run);
}

TEST(CommSplit, ReplayRebuildsCommunicators) {
  auto run = runIt(R"(
    func main() {
      var c = mpi_comm_split(rank / 4, rank);
      compute(rank * 10000);
      mpi_allreduce_c(c, 256);
      mpi_barrier();
    })", 8);
  core::MergedCtt merged = driver::mergeCypress(run);
  trace::RawTrace dec = core::decompressAll(merged, run.procs);
  replay::Prediction p = replay::simulate(dec);
  EXPECT_EQ(p.totalEvents, run.raw.totalEvents());
  EXPECT_GT(p.predictedNs, 0u);
}

TEST(CommSplit, MismatchedMembershipDetected) {
  // Rank 1 calls a world barrier while rank 0 waits on the sub-comm
  // collective that rank 1 never joins -> deadlock detection fires.
  EXPECT_THROW(runIt(R"(
    func main() {
      var c = mpi_comm_split(rank / 2, rank);
      if (rank == 0) { mpi_allreduce_c(c, 8); }
      mpi_barrier();
    })", 4),
               Error);
}

TEST(Sendrecv, LowersToPairedSendRecv) {
  auto run = runIt(R"(
    func main() {
      for (var i = 0; i < 4; i = i + 1) {
        mpi_sendrecv((rank + 1) % size, 512, 3,
                     (rank + size - 1) % size, 512, 3);
      }
    })", 5);
  const auto& ev = run.raw.ranks[2].events;
  ASSERT_EQ(ev.size(), 8u);
  EXPECT_EQ(ev[0].op, ir::MpiOp::Send);
  EXPECT_EQ(ev[1].op, ir::MpiOp::Recv);
  EXPECT_NE(ev[0].callSiteId, ev[1].callSiteId);
  expectCypressLossless(run);
}

TEST(Extensions, ScalaTraceHandlesNewOpsLosslessly) {
  driver::Options opts;
  opts.procs = 4;
  auto run = driver::runSource("ext", R"(
    func main() {
      var c = mpi_comm_split(rank / 2, rank);
      for (var i = 0; i < 3; i = i + 1) {
        var a = mpi_isend((rank + 1) % size, 128, 0);
        var b = mpi_irecv((rank + size - 1) % size, 128, 0);
        mpi_waitsome();
        mpi_waitall();
        mpi_allreduce_c(c, 32);
      }
      mpi_barrier();
    })", opts);
  std::vector<const std::vector<scalatrace::Element>*> seqs;
  for (const auto& r : run.scala) seqs.push_back(&r->sequence());
  auto merged = scalatrace::mergeSequences(seqs, scalatrace::Flavor::V1);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(contentOnly(scalatrace::decompressRank(merged, r)),
              contentOnly(run.raw.ranks[static_cast<size_t>(r)].events));
  }
}

}  // namespace
}  // namespace cypress
