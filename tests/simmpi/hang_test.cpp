// Hang/deadlock detection: when no rank can make progress the run must
// terminate deterministically with a structured error whose diagnostics
// name every stuck rank, its pending operation, peer, tag and call
// index — or, in salvage mode, return normally with the same dump in
// RunResult so partial traces can still be recovered.
#include <gtest/gtest.h>

#include "minic/compile.hpp"
#include "simmpi/engine.hpp"
#include "simmpi/fault.hpp"
#include "support/error.hpp"
#include "vm/runner.hpp"

namespace cypress {
namespace {

using minic::compileProgram;

vm::RunResult runPlan(const std::string& src, int ranks,
                      const simmpi::FaultPlan& plan,
                      vm::OnStall onStall = vm::OnStall::Throw) {
  auto m = compileProgram(src);
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  cfg.faults = plan;
  simmpi::Engine engine(cfg);
  std::vector<trace::Observer*> obs(static_cast<size_t>(ranks), nullptr);
  vm::RunOptions opts;
  opts.onStall = onStall;
  return vm::run(*m, engine, obs, opts);
}

/// Run and capture the hang error message; fails the test if no Error.
std::string hangMessage(const std::string& src, int ranks,
                        const simmpi::FaultPlan& plan = {}) {
  try {
    runPlan(src, ranks, plan);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a hang, but the run completed";
  return {};
}

TEST(HangDetection, CrossedBlockingRecvsNameEveryStuckRank) {
  // Every rank receives from its neighbour and nobody ever sends: the
  // classic crossed-blocking deadlock. The diagnostics must identify
  // each rank, the pending MPI_Recv, and the awaited peer.
  const std::string msg = hangMessage(R"(
    func main() {
      mpi_recv((rank + 1) % size, 8, 5);
    })", 3);
  EXPECT_NE(msg.find("MPI hang detected"), std::string::npos) << msg;
  for (int r = 0; r < 3; ++r) {
    EXPECT_NE(msg.find("rank " + std::to_string(r) + ": blocked in MPI_Recv"),
              std::string::npos)
        << msg;
  }
  EXPECT_NE(msg.find("tag=5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no matching message from rank 1"), std::string::npos)
      << msg;
}

TEST(HangDetection, CollectiveWithDeadRankNamesTheDeadRank) {
  // Rank 1 is killed entering its first MPI call (the barrier), so the
  // collective can never complete. The survivors' diagnostics must say
  // they are blocked in MPI_Barrier waiting on the dead rank.
  simmpi::FaultPlan plan;
  plan.faults.push_back(simmpi::parseFaultSpec("kill:1@1"));
  const std::string msg = hangMessage(R"(
    func main() {
      mpi_barrier();
    })", 4, plan);
  EXPECT_NE(msg.find("MPI_Barrier"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 1: dead"), std::string::npos) << msg;
  EXPECT_NE(msg.find("killed by the fault plan"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank 0: blocked"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dead: 1"), std::string::npos) << msg;
}

TEST(HangDetection, TagMismatchNamesThePendingRecv) {
  // The sender uses tag 1 but the receiver waits on tag 2 forever. The
  // stuck rank's diagnostic must carry the op, the peer and the tag it
  // is actually waiting for.
  const std::string msg = hangMessage(R"(
    func main() {
      if (rank == 0) { mpi_send(1, 64, 1); }
      if (rank == 1) { mpi_recv(0, 64, 2); }
    })", 2);
  EXPECT_NE(msg.find("rank 1: blocked in MPI_Recv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("tag=2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no matching message from rank 0"), std::string::npos)
      << msg;
}

TEST(HangDetection, RecvFromDeadPeerIsDiagnosed) {
  // Rank 0 dies before sending; rank 1's diagnostic must say the peer
  // is dead, not merely that no message matched.
  simmpi::FaultPlan plan;
  plan.faults.push_back(simmpi::parseFaultSpec("kill:0@1"));
  const std::string msg = hangMessage(R"(
    func main() {
      if (rank == 0) { mpi_send(1, 64, 0); }
      if (rank == 1) { mpi_recv(0, 64, 0); }
    })", 2, plan);
  EXPECT_NE(msg.find("peer rank 0 is dead"), std::string::npos) << msg;
}

TEST(HangDetection, DroppedMessageHangsTheReceiverDeterministically) {
  // A dropped p2p message leaves the receiver blocked forever; the hang
  // detector must fire (not spin), and the dump names the fault plan.
  simmpi::FaultPlan plan;
  plan.faults.push_back(simmpi::parseFaultSpec("drop:0@1"));
  const std::string msg = hangMessage(R"(
    func main() {
      if (rank == 0) { mpi_send(1, 64, 0); }
      if (rank == 1) { mpi_recv(0, 64, 0); }
    })", 2, plan);
  EXPECT_NE(msg.find("rank 1: blocked in MPI_Recv"), std::string::npos) << msg;
  EXPECT_NE(msg.find("drop:0@1"), std::string::npos) << msg;
}

TEST(HangDetection, SalvageModeReturnsStalledRanksInsteadOfThrowing) {
  simmpi::FaultPlan plan;
  plan.faults.push_back(simmpi::parseFaultSpec("kill:1@1"));
  const auto res = runPlan(R"(
    func main() {
      mpi_barrier();
    })", 4, plan, vm::OnStall::Salvage);
  EXPECT_FALSE(res.clean());
  EXPECT_EQ(res.deadRanks, (std::vector<int>{1}));
  EXPECT_EQ(res.stalledRanks, (std::vector<int>{0, 2, 3}));
  EXPECT_NE(res.stallDiagnostics.find("MPI_Barrier"), std::string::npos)
      << res.stallDiagnostics;
  EXPECT_NE(res.stallDiagnostics.find("rank 1: dead"), std::string::npos)
      << res.stallDiagnostics;
}

TEST(HangDetection, CleanRunReportsClean) {
  const auto res = runPlan(R"(
    func main() {
      var right = (rank + 1) % size;
      mpi_send(right, 128, 0);
      mpi_recv((rank + size - 1) % size, 128, 0);
      mpi_barrier();
    })", 4, {}, vm::OnStall::Salvage);
  EXPECT_TRUE(res.clean());
  EXPECT_TRUE(res.stallDiagnostics.empty());
}

TEST(HangDetection, DelayedMessageStillCompletes) {
  // A delayed message must not hang the receiver — delivery is late,
  // not lost, so the run is clean.
  simmpi::FaultPlan plan;
  plan.faults.push_back(simmpi::parseFaultSpec("delay:0@1:5000000"));
  const auto res = runPlan(R"(
    func main() {
      if (rank == 0) { mpi_send(1, 64, 0); }
      if (rank == 1) { mpi_recv(0, 64, 0); }
    })", 2, plan, vm::OnStall::Salvage);
  EXPECT_TRUE(res.clean());
}

}  // namespace
}  // namespace cypress
