// End-to-end tests of the simulated MPI engine + VM: program execution,
// message matching, collectives, non-blocking ops, wildcard receives,
// structure-marker delivery, deadlock detection, determinism.
#include <gtest/gtest.h>

#include "cst/builder.hpp"
#include "minic/compile.hpp"
#include "simmpi/engine.hpp"
#include "support/error.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress {
namespace {

using minic::compileProgram;

/// Run a MiniC program on P ranks with raw tracing; returns the trace.
trace::RawTrace runRaw(const std::string& src, int ranks,
                       bool instrument = false, double jitter = 0.05) {
  auto m = compileProgram(src);
  if (instrument) cst::analyzeAndInstrument(*m);
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  cfg.jitter = jitter;
  simmpi::Engine engine(cfg);
  trace::RawTrace out;
  out.ranks.resize(static_cast<size_t>(ranks));
  std::vector<std::unique_ptr<trace::RawRecorder>> recs;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    out.ranks[static_cast<size_t>(r)].rank = r;
    recs.push_back(std::make_unique<trace::RawRecorder>(out.ranks[static_cast<size_t>(r)]));
    obs.push_back(recs.back().get());
  }
  vm::run(*m, engine, obs, 1ull << 26);
  return out;
}

TEST(SimMpi, RingSendRecv) {
  // Every rank sends to its right neighbour and receives from the left.
  auto t = runRaw(R"(
    func main() {
      var right = (rank + 1) % size;
      var left = (rank + size - 1) % size;
      mpi_send(right, 1024, 7);
      mpi_recv(left, 1024, 7);
    })", 8);
  for (const auto& r : t.ranks) {
    ASSERT_EQ(r.events.size(), 2u);
    EXPECT_EQ(r.events[0].op, ir::MpiOp::Send);
    EXPECT_EQ(r.events[0].peer, (r.rank + 1) % 8);
    EXPECT_EQ(r.events[0].bytes, 1024);
    EXPECT_EQ(r.events[0].tag, 7);
    EXPECT_EQ(r.events[1].op, ir::MpiOp::Recv);
    EXPECT_EQ(r.events[1].peer, (r.rank + 8 - 1) % 8);
  }
}

TEST(SimMpi, JacobiPattern) {
  // The paper's Figure 3/4: boundary ranks do fewer operations.
  auto t = runRaw(R"(
    func main() {
      for (var k = 0; k < 5; k = k + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 512, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 512, 0); }
        if (rank > 0)        { mpi_send(rank - 1, 512, 0); }
        if (rank < size - 1) { mpi_recv(rank + 1, 512, 0); }
      }
    })", 6);
  EXPECT_EQ(t.ranks[0].events.size(), 10u);              // 2 ops x 5 iters
  EXPECT_EQ(t.ranks[5].events.size(), 10u);
  for (int r = 1; r <= 4; ++r)
    EXPECT_EQ(t.ranks[static_cast<size_t>(r)].events.size(), 20u);
}

TEST(SimMpi, CollectivesComplete) {
  auto t = runRaw(R"(
    func main() {
      mpi_barrier();
      mpi_bcast(0, 4096);
      mpi_reduce(0, 64);
      mpi_allreduce(8);
      mpi_allgather(128);
      mpi_alltoall(256);
    })", 5);
  for (const auto& r : t.ranks) {
    ASSERT_EQ(r.events.size(), 6u);
    EXPECT_EQ(r.events[1].op, ir::MpiOp::Bcast);
    EXPECT_EQ(r.events[1].peer, 0);
    EXPECT_EQ(r.events[1].bytes, 4096);
    EXPECT_EQ(r.events[5].op, ir::MpiOp::Alltoall);
    EXPECT_GT(r.events[0].durationNs, 0u);
  }
}

TEST(SimMpi, CollectiveMismatchDetected) {
  EXPECT_THROW(runRaw(R"(
    func main() {
      if (rank == 0) { mpi_bcast(0, 64); }
      else { mpi_reduce(0, 64); }
    })", 2),
               Error);
}

TEST(SimMpi, NonBlockingWithWait) {
  auto t = runRaw(R"(
    func main() {
      var right = (rank + 1) % size;
      var left = (rank + size - 1) % size;
      var rs = mpi_isend(right, 2048, 3);
      var rr = mpi_irecv(left, 2048, 3);
      mpi_wait(rs);
      mpi_wait(rr);
    })", 4);
  for (const auto& r : t.ranks) {
    ASSERT_EQ(r.events.size(), 4u);
    EXPECT_EQ(r.events[0].op, ir::MpiOp::Isend);
    EXPECT_EQ(r.events[1].op, ir::MpiOp::Irecv);
    EXPECT_EQ(r.events[2].op, ir::MpiOp::Wait);
    // The wait records the posting site (the paper's request->GID map).
    EXPECT_EQ(r.events[2].reqId, r.events[0].callSiteId);
    EXPECT_EQ(r.events[3].reqId, r.events[1].callSiteId);
  }
}

TEST(SimMpi, WaitallCompletesAllOutstanding) {
  auto t = runRaw(R"(
    func main() {
      var right = (rank + 1) % size;
      var left = (rank + size - 1) % size;
      var a = mpi_isend(right, 64, 0);
      var b = mpi_isend(right, 64, 1);
      var c = mpi_irecv(left, 64, 0);
      var d = mpi_irecv(left, 64, 1);
      mpi_waitall();
    })", 3);
  for (const auto& r : t.ranks) {
    ASSERT_EQ(r.events.size(), 5u);
    EXPECT_EQ(r.events[4].op, ir::MpiOp::Waitall);
  }
}

TEST(SimMpi, WildcardRecvRecordsMatchedSource) {
  auto t = runRaw(R"(
    func main() {
      if (rank != 0) {
        mpi_send(0, 8, 5);
      } else {
        for (var i = 1; i < size; i = i + 1) {
          mpi_recv(ANY_SOURCE, 8, 5);
        }
      }
    })", 4);
  const auto& r0 = t.ranks[0].events;
  ASSERT_EQ(r0.size(), 3u);
  std::set<int> sources;
  for (const auto& e : r0) {
    EXPECT_EQ(e.op, ir::MpiOp::Recv);
    EXPECT_EQ(e.peer, trace::kAnySource);
    EXPECT_GE(e.matchedSource, 1);
    sources.insert(e.matchedSource);
  }
  EXPECT_EQ(sources.size(), 3u);  // each sender matched exactly once
}

TEST(SimMpi, WildcardIrecvMatchedAtWait) {
  auto t = runRaw(R"(
    func main() {
      if (rank == 1) { mpi_send(0, 32, 9); }
      if (rank == 0) {
        var r = mpi_irecv(ANY_SOURCE, 32, 9);
        mpi_wait(r);
      }
    })", 2);
  const auto& r0 = t.ranks[0].events;
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0].op, ir::MpiOp::Irecv);
  EXPECT_EQ(r0[1].op, ir::MpiOp::Wait);
  EXPECT_EQ(r0[1].matchedSource, 1);
}

TEST(SimMpi, WaitanyPicksACompleteRequest) {
  auto t = runRaw(R"(
    func main() {
      if (rank == 1) { mpi_send(0, 16, 0); mpi_send(0, 16, 1); }
      if (rank == 0) {
        var a = mpi_irecv(1, 16, 0);
        var b = mpi_irecv(1, 16, 1);
        mpi_waitany();
        mpi_waitany();
      }
    })", 2);
  const auto& r0 = t.ranks[0].events;
  ASSERT_EQ(r0.size(), 4u);
  EXPECT_EQ(r0[2].op, ir::MpiOp::Waitany);
  EXPECT_EQ(r0[3].op, ir::MpiOp::Waitany);
  EXPECT_NE(r0[2].reqId, -1);
  EXPECT_NE(r0[3].reqId, -1);
}

TEST(SimMpi, MessageOrderingPreservedPerPair) {
  // Two tagged messages from the same sender must match in order for
  // identical tags.
  auto t = runRaw(R"(
    func main() {
      if (rank == 0) {
        mpi_send(1, 100, 0);
        mpi_send(1, 200, 0);
      }
      if (rank == 1) {
        mpi_recv(0, 100, 0);
        mpi_recv(0, 200, 0);
      }
    })", 2);
  const auto& r1 = t.ranks[1].events;
  EXPECT_EQ(r1[0].bytes, 100);
  EXPECT_EQ(r1[1].bytes, 200);
}

TEST(SimMpi, DeadlockDetected) {
  EXPECT_THROW(runRaw(R"(
    func main() {
      mpi_recv((rank + 1) % size, 8, 0);  // everyone receives, nobody sends
    })", 3),
               Error);
}

TEST(SimMpi, DeterministicAcrossRuns) {
  const char* src = R"(
    func main() {
      compute(1000);
      var right = (rank + 1) % size;
      mpi_send(right, 256, 0);
      mpi_recv(ANY_SOURCE, 256, 0);
      mpi_allreduce(8);
    })";
  auto a = runRaw(src, 6);
  auto b = runRaw(src, 6);
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(SimMpi, ClocksAdvanceAndCommTimeTracked) {
  auto m = compileProgram(R"(
    func main() {
      compute(100000);
      mpi_barrier();
    })");
  simmpi::Engine::Config cfg;
  cfg.numRanks = 2;
  simmpi::Engine engine(cfg);
  std::vector<trace::Observer*> obs = {nullptr, nullptr};
  auto res = vm::run(*m, engine, obs);
  EXPECT_GT(res.executionNs, 100000u * 2 / 3);
  EXPECT_GT(res.rankCommNs[0] + res.rankCommNs[1], 0u);
}

TEST(SimMpi, ComputeGapsRecordedOnNextEvent) {
  auto t = runRaw(R"(
    func main() {
      compute(50000);
      mpi_barrier();
      mpi_barrier();
    })", 2, false, 0.0);
  for (const auto& r : t.ranks) {
    ASSERT_EQ(r.events.size(), 2u);
    EXPECT_EQ(r.events[0].computeNs, 50000u);
    EXPECT_EQ(r.events[1].computeNs, 0u);
  }
}

TEST(SimMpi, StructureMarkersReachObserver) {
  // Count Enter/Exit hooks with an instrumented loop program.
  class CountingObserver final : public trace::Observer {
   public:
    int enters = 0, exits = 0, events = 0, calls = 0;
    void onEvent(const trace::Event&) override { ++events; }
    void onStructEnter(int, int) override { ++enters; }
    void onStructExit(int) override { ++exits; }
    void onCallEnter(int, const std::string&) override { ++calls; }
    void onCallExit(const std::string&) override {}
    void onFinalize() override {}
  };

  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) { mpi_barrier(); }
    })");
  cst::analyzeAndInstrument(*m);
  simmpi::Engine::Config cfg;
  cfg.numRanks = 2;
  simmpi::Engine engine(cfg);
  CountingObserver a, b;
  std::vector<trace::Observer*> obs = {&a, &b};
  vm::run(*m, engine, obs);
  EXPECT_EQ(a.enters, 10);  // once per iteration
  EXPECT_EQ(a.exits, 1);    // once at loop exit
  EXPECT_EQ(a.events, 10);
  EXPECT_EQ(b.enters, 10);
}

TEST(SimMpi, ZeroIterationLoopFiresExitOnly) {
  class CountingObserver final : public trace::Observer {
   public:
    int enters = 0, exits = 0;
    void onEvent(const trace::Event&) override {}
    void onStructEnter(int, int) override { ++enters; }
    void onStructExit(int) override { ++exits; }
    void onCallEnter(int, const std::string&) override {}
    void onCallExit(const std::string&) override {}
    void onFinalize() override {}
  };
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 0; i = i + 1) { mpi_barrier(); }
      mpi_barrier();
    })");
  cst::analyzeAndInstrument(*m);
  simmpi::Engine::Config cfg;
  cfg.numRanks = 1;
  simmpi::Engine engine(cfg);
  CountingObserver a;
  std::vector<trace::Observer*> obs = {&a};
  vm::run(*m, engine, obs);
  EXPECT_EQ(a.enters, 0);
  EXPECT_EQ(a.exits, 1);
}

TEST(SimMpi, FunctionCallHooksFire) {
  class CallObserver final : public trace::Observer {
   public:
    std::vector<std::string> log;
    void onEvent(const trace::Event& e) override {
      log.push_back(ir::mpiOpName(e.op));
    }
    void onStructEnter(int, int) override {}
    void onStructExit(int) override {}
    void onCallEnter(int, const std::string& callee) override {
      log.push_back("enter " + callee);
    }
    void onCallExit(const std::string& callee) override {
      log.push_back("exit " + callee);
    }
    void onFinalize() override { log.push_back("finalize"); }
  };
  auto m = compileProgram(R"(
    func halo() { mpi_barrier(); }
    func main() { halo(); }
  )");
  simmpi::Engine::Config cfg;
  cfg.numRanks = 1;
  simmpi::Engine engine(cfg);
  CallObserver a;
  std::vector<trace::Observer*> obs = {&a};
  vm::run(*m, engine, obs);
  EXPECT_EQ(a.log, (std::vector<std::string>{"enter halo", "MPI_Barrier",
                                             "exit halo", "finalize"}));
}

TEST(SimMpi, RecursiveProgramExecutes) {
  auto t = runRaw(R"(
    func down(n) {
      if (n > 0) {
        mpi_barrier();
        down(n - 1);
      }
    }
    func main() { down(3); }
  )", 2);
  EXPECT_EQ(t.ranks[0].events.size(), 3u);
}

TEST(SimMpi, RawTraceSerializationRoundTrip) {
  auto t = runRaw(R"(
    func main() {
      var right = (rank + 1) % size;
      var r = mpi_isend(right, 512, 2);
      mpi_recv((rank + size - 1) % size, 512, 2);
      mpi_wait(r);
      mpi_reduce(0, 64);
    })", 4);
  auto bytes = t.serialize();
  auto back = trace::RawTrace::deserialize(bytes);
  ASSERT_EQ(back.ranks.size(), t.ranks.size());
  for (size_t i = 0; i < t.ranks.size(); ++i)
    EXPECT_EQ(back.ranks[i].events, t.ranks[i].events);
}

}  // namespace
}  // namespace cypress
