// Fault-injection matrix: seeded random fault plans over real workloads,
// asserting the robustness contract — every injected fault ends in a
// recovered partial trace, a structured cypress::Error with per-rank
// diagnostics, or a clean run. Never a hang (the ctest TIMEOUT is the
// watchdog), never a crash, never a silently wrong trace.
#include <gtest/gtest.h>

#include <cstring>

#include "driver/pipeline.hpp"
#include "simmpi/fault.hpp"
#include "support/error.hpp"
#include "trace/journal.hpp"

namespace cypress {
namespace {

driver::Options faultOptions(const simmpi::FaultPlan& plan, int threads = 1) {
  driver::Options opts;
  opts.procs = 8;
  opts.threads = threads;
  opts.withScala = false;  // the contract under test is CYPRESS + journal
  opts.withScala2 = false;
  opts.engine.faults = plan;
  opts.withJournal = true;
  opts.journalFlushEvery = 8;  // small batches: tighter recovery bound
  opts.onStall = vm::OnStall::Salvage;
  return opts;
}

/// Check one salvaged (or clean) run end to end: merged trace valid,
/// journal sealed and strictly parseable, annotations consistent.
void checkOutcome(const driver::RunOutput& run,
                  const simmpi::FaultPlan& plan) {
  const std::string ctx = "plan " + plan.toString();
  const RankSet lost = run.lostRanks();

  // Graceful degradation: merging must succeed whatever the damage, and
  // the survivors' trace must carry the lost-rank annotation.
  const auto merged = driver::mergeCypress(run);
  EXPECT_EQ(merged.lostRanks(), lost) << ctx;
  const auto bytes = merged.serialize();
  cst::Tree tree;
  const auto back = core::MergedCtt::deserializeWithTree(bytes, tree);
  EXPECT_EQ(back.lostRanks(), lost) << ctx;
  EXPECT_EQ(back.serialize(), bytes) << ctx;

  // The journal must be sealed with the same lost set, pass the strict
  // parser, and agree with the raw trace on every surviving rank.
  ASSERT_NE(run.journal, nullptr) << ctx;
  EXPECT_TRUE(run.journal->sealed()) << ctx;
  const auto rec = trace::parseJournal(run.journal->bytes());
  EXPECT_TRUE(rec.sealed) << ctx;
  EXPECT_EQ(rec.lostRanks, lost) << ctx;
  ASSERT_EQ(rec.trace.ranks.size(), run.raw.ranks.size()) << ctx;
  for (size_t r = 0; r < run.raw.ranks.size(); ++r) {
    if (lost.contains(static_cast<int32_t>(r))) continue;
    EXPECT_EQ(rec.trace.ranks[r].events, run.raw.ranks[r].events)
        << ctx << ": journal diverges from the raw trace on rank " << r;
  }

  if (run.runStats.clean()) {
    EXPECT_TRUE(lost.empty()) << ctx;
  } else {
    // Salvaged: diagnostics must exist iff ranks stalled, and every
    // dead rank must be annotated lost.
    if (!run.runStats.stalledRanks.empty())
      EXPECT_FALSE(run.runStats.stallDiagnostics.empty()) << ctx;
    for (int r : run.runStats.deadRanks) EXPECT_TRUE(lost.contains(r)) << ctx;
  }
}

TEST(FaultMatrix, TwentyFourSeededPlansObeyTheContract) {
  int clean = 0, salvaged = 0, structured = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    const auto plan = simmpi::randomFaultPlan(seed, /*numRanks=*/8);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.toString());
    try {
      const auto run = driver::runWorkload("JACOBI", faultOptions(plan));
      checkOutcome(run, plan);
      run.runStats.clean() ? ++clean : ++salvaged;
    } catch (const Error& e) {
      // The structured-error outcome is acceptable, but it must carry
      // per-rank diagnostics, not a bare failure.
      EXPECT_NE(std::string(e.what()).find("rank"), std::string::npos)
          << e.what();
      ++structured;
    }
  }
  // The seeded matrix must actually exercise the fault paths: some runs
  // survive degraded, and not every plan may land on a no-op ordinal.
  EXPECT_GT(salvaged + structured, 0);
  EXPECT_EQ(clean + salvaged + structured, 24);
}

TEST(FaultMatrix, CollectiveWorkloadSurvivesTheMatrixToo) {
  // FT is collective-heavy, so abort faults land inside collectives and
  // the salvage path must cope with half-arrived collectives.
  for (uint64_t seed = 100; seed < 108; ++seed) {
    const auto plan = simmpi::randomFaultPlan(seed, /*numRanks=*/8);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.toString());
    try {
      const auto run = driver::runWorkload("FT", faultOptions(plan));
      checkOutcome(run, plan);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("rank"), std::string::npos)
          << e.what();
    }
  }
}

TEST(FaultMatrix, KilledRankYieldsPartialTraceForSurvivors) {
  // Deterministic spot check of the degraded path: rank 3 dies at its
  // 5th MPI call, the survivors' merged trace stays valid and annotated.
  simmpi::FaultPlan plan;
  plan.faults.push_back(simmpi::parseFaultSpec("kill:3@5"));
  const auto run = driver::runWorkload("JACOBI", faultOptions(plan));
  EXPECT_EQ(run.runStats.deadRanks, (std::vector<int>{3}));
  EXPECT_FALSE(run.runStats.clean());
  const auto merged = driver::mergeCypress(run);
  EXPECT_TRUE(merged.lostRanks().contains(3));
  checkOutcome(run, plan);
}

TEST(FaultMatrix, EveryRankDeadDegradesToAnnotatedEmptyTrace) {
  simmpi::FaultPlan plan;
  for (int r = 0; r < 8; ++r)
    plan.faults.push_back(simmpi::parseFaultSpec(
        "kill:" + std::to_string(r) + "@1"));
  const auto run = driver::runWorkload("JACOBI", faultOptions(plan));
  EXPECT_EQ(run.runStats.deadRanks.size(), 8u);
  const auto merged = driver::mergeCypress(run);
  EXPECT_EQ(merged.lostRanks().size(), 8u);
  // Still a valid, roundtrippable CYPC file.
  const auto bytes = merged.serialize();
  cst::Tree tree;
  const auto back = core::MergedCtt::deserializeWithTree(bytes, tree);
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(FaultMatrix, ParallelSchedulerPreservesFaultOutcomes) {
  // The seeded matrix again, but under the parallel epoch scheduler:
  // every plan must resolve to exactly the same outcome at threads 1
  // and threads 4 — same journal bytes, same casualties, same
  // diagnostics, or the same structured error. Fault ordinals are
  // per-rank counters and commits run in rank order, so the thread
  // count must be unobservable even mid-crash.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const auto plan = simmpi::randomFaultPlan(seed, /*numRanks=*/8);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.toString());
    struct Outcome {
      bool threw = false;
      std::string error;
      std::vector<uint8_t> journal;
      std::vector<int> deadRanks;
      std::vector<int> stalledRanks;
      std::string stallDiagnostics;
    };
    auto runAt = [&](int threads) {
      Outcome o;
      try {
        const auto run = driver::runWorkload("JACOBI",
                                             faultOptions(plan, threads));
        checkOutcome(run, plan);
        o.journal = run.journal->bytes();
        o.deadRanks = run.runStats.deadRanks;
        o.stalledRanks = run.runStats.stalledRanks;
        o.stallDiagnostics = run.runStats.stallDiagnostics;
      } catch (const Error& e) {
        o.threw = true;
        o.error = e.what();
      }
      return o;
    };
    const Outcome seq = runAt(1);
    const Outcome par = runAt(4);
    EXPECT_EQ(par.threw, seq.threw);
    EXPECT_EQ(par.error, seq.error);
    EXPECT_EQ(par.journal, seq.journal);
    EXPECT_EQ(par.deadRanks, seq.deadRanks);
    EXPECT_EQ(par.stalledRanks, seq.stalledRanks);
    EXPECT_EQ(par.stallDiagnostics, seq.stallDiagnostics);
  }
}

TEST(FaultMatrix, CollectiveFaultsIdenticalUnderParallelScheduler) {
  // FT's collectives under the same contract: abort faults that land
  // inside half-arrived collectives must salvage identically at any
  // thread count.
  for (uint64_t seed = 100; seed < 104; ++seed) {
    const auto plan = simmpi::randomFaultPlan(seed, /*numRanks=*/8);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + plan.toString());
    auto journalAt = [&](int threads) -> std::vector<uint8_t> {
      try {
        const auto run = driver::runWorkload("FT", faultOptions(plan, threads));
        return run.journal->bytes();
      } catch (const Error& e) {
        return std::vector<uint8_t>(e.what(),
                                    e.what() + std::strlen(e.what()));
      }
    };
    EXPECT_EQ(journalAt(4), journalAt(1));
  }
}

TEST(FaultMatrix, FaultedRunsAreDeterministic) {
  // Same (program, seed, plan) triple → byte-identical journal and
  // identical diagnostics, run twice.
  const auto plan = simmpi::randomFaultPlan(7, /*numRanks=*/8);
  auto once = [&] { return driver::runWorkload("CG", faultOptions(plan)); };
  const auto a = once();
  const auto b = once();
  ASSERT_NE(a.journal, nullptr);
  ASSERT_NE(b.journal, nullptr);
  EXPECT_EQ(a.journal->bytes(), b.journal->bytes());
  EXPECT_EQ(a.runStats.deadRanks, b.runStats.deadRanks);
  EXPECT_EQ(a.runStats.stalledRanks, b.runStats.stalledRanks);
  EXPECT_EQ(a.runStats.stallDiagnostics, b.runStats.stallDiagnostics);
}

}  // namespace
}  // namespace cypress
