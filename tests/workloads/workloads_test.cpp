// Workload integration tests: every NPB skeleton compiles, runs on the
// simulated MPI at a small process count, traces losslessly through the
// full CYPRESS pipeline, and exhibits its characteristic pattern.
#include <gtest/gtest.h>

#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "scalatrace/inter.hpp"
#include "trace/matrix.hpp"
#include "workloads/workloads.hpp"

namespace cypress::driver {
namespace {

std::vector<trace::Event> contentOnly(std::vector<trace::Event> ev) {
  for (auto& e : ev) {
    e.computeNs = 0;
    e.durationNs = 0;
  }
  return ev;
}

/// Smallest paper-adjacent process count each workload supports in tests.
int testProcs(const std::string& name) {
  if (name == "BT" || name == "SP") return 16;  // 4x4 grid
  if (name == "LESLIE3D") return 8;
  if (name == "DT") return 12;
  return 16;
}

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, RunsAndCypressRoundTripsLosslessly) {
  Options opts;
  opts.procs = testProcs(GetParam());
  opts.scale = 1;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload(GetParam(), opts);

  EXPECT_GT(run.raw.totalEvents(), 0u);
  core::MergedCtt merged = mergeCypress(run);
  for (int r = 0; r < opts.procs; ++r) {
    auto got = contentOnly(core::decompressRank(merged, r));
    auto want = contentOnly(run.raw.ranks[static_cast<size_t>(r)].events);
    ASSERT_EQ(got.size(), want.size()) << GetParam() << " rank " << r;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << GetParam() << " rank " << r << " event " << i << "\n got "
          << got[i].toString() << "\nwant " << want[i].toString();
    }
  }
}

TEST_P(WorkloadSuite, ScalaTraceRoundTripsLosslessly) {
  Options opts;
  opts.procs = testProcs(GetParam());
  opts.withCypress = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload(GetParam(), opts);

  std::vector<const std::vector<scalatrace::Element>*> seqs;
  for (const auto& r : run.scala) seqs.push_back(&r->sequence());
  auto merged = scalatrace::mergeSequences(seqs, scalatrace::Flavor::V1);
  for (int r = 0; r < opts.procs; ++r) {
    EXPECT_EQ(contentOnly(scalatrace::decompressRank(merged, r)),
              contentOnly(run.raw.ranks[static_cast<size_t>(r)].events))
        << GetParam() << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSuite,
                         ::testing::Values("BT", "CG", "DT", "EP", "FT", "LU",
                                           "MG", "SP", "JACOBI", "LESLIE3D",
                                           "SMG2000", "IS"),
                         [](const auto& info) { return info.param; });

TEST(Workloads, CstShapesAreStable) {
  // Golden structural counts per workload: catches accidental changes to
  // skeleton structure or the CST builder. Update deliberately when a
  // skeleton changes.
  struct Golden {
    const char* name;
    int procs;
    int loops, branches, comms;
  };
  const Golden goldens[] = {
      {"BT", 16, 1, 12, 22},     {"CG", 16, 5, 1, 8},
      {"DT", 12, 0, 3, 4},       {"EP", 16, 0, 0, 3},
      {"FT", 16, 1, 0, 2},       {"LU", 16, 3, 9, 9},
      {"MG", 16, 3, 26, 25},     {"SP", 16, 1, 6, 16},
      {"JACOBI", 8, 1, 4, 4},    {"LESLIE3D", 8, 1, 13, 14},
  };
  for (const Golden& g : goldens) {
    Options opts;
    opts.procs = g.procs;
    opts.withRaw = false;
    opts.withScala = false;
    opts.withScala2 = false;
    opts.withCypress = false;
    RunOutput run = runWorkload(g.name, opts);
    EXPECT_EQ(run.compileStats.numLoops, g.loops) << g.name;
    EXPECT_EQ(run.compileStats.numBranches, g.branches) << g.name;
    EXPECT_EQ(run.compileStats.numCommVertices, g.comms) << g.name;
  }
}

TEST(Workloads, RegistryIsComplete) {
  auto names = workloads::allNames();
  EXPECT_EQ(names.size(), 12u);
  for (const auto& n : workloads::npbNames())
    EXPECT_NO_THROW(workloads::get(n));
  EXPECT_THROW(workloads::get("NOPE"), Error);
}

TEST(Workloads, ProcessCountValidation) {
  EXPECT_TRUE(workloads::get("BT").supportsProcs(121));
  EXPECT_FALSE(workloads::get("BT").supportsProcs(120));
  EXPECT_TRUE(workloads::get("CG").supportsProcs(128));
  EXPECT_FALSE(workloads::get("CG").supportsProcs(96));
  Options opts;
  opts.procs = 15;
  EXPECT_THROW(runWorkload("BT", opts), Error);
}

TEST(Workloads, EpHasTinyTrace) {
  Options opts;
  opts.procs = 16;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("EP", opts);
  EXPECT_LE(run.raw.ranks[0].events.size(), 4u);
}

TEST(Workloads, LuHasManySmallMessages) {
  Options opts;
  opts.procs = 16;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("LU", opts);
  // Interior ranks send/recv hundreds of small messages.
  size_t maxEvents = 0;
  for (const auto& r : run.raw.ranks) maxEvents = std::max(maxEvents, r.events.size());
  EXPECT_GT(maxEvents, 500u);
}

TEST(Workloads, SpVariedSizesDefeatLastRecordMatching) {
  Options opts;
  opts.procs = 16;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput runSp = runWorkload("SP", opts);
  RunOutput runBt = runWorkload("BT", opts);
  // SP's per-iteration varying sizes force many more CYPRESS records
  // than BT's constant sizes.
  EXPECT_GT(runSp.cypress[5]->ctt().compressedItems(),
            4 * runBt.cypress[5]->ctt().compressedItems());
}

TEST(Workloads, MgRanksDiverge) {
  Options opts;
  opts.procs = 16;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("MG", opts);
  // Coarse levels exclude some ranks: event counts differ across ranks.
  std::set<size_t> counts;
  for (const auto& r : run.raw.ranks) counts.insert(r.events.size());
  EXPECT_GT(counts.size(), 1u);
}

TEST(Workloads, LeslieHasExactlyTwoHaloSizes) {
  Options opts;
  opts.procs = 8;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("LESLIE3D", opts);
  std::set<int64_t> sizes;
  for (const auto& r : run.raw.ranks)
    for (const auto& e : r.events)
      if (e.op == ir::MpiOp::Isend) sizes.insert(e.bytes);
  EXPECT_EQ(sizes, (std::set<int64_t>{44032, 84992}));
}

TEST(Workloads, LeslieCommLocality) {
  Options opts;
  opts.procs = 32;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("LESLIE3D", opts);
  auto m = trace::commMatrix(run.raw);
  // The paper: at 32 processes, rank 0 talks exactly to 1, 2 and 8.
  std::set<int> peers;
  for (size_t j = 0; j < m[0].size(); ++j)
    if (m[0][j] > 0) peers.insert(static_cast<int>(j));
  EXPECT_EQ(peers, (std::set<int>{1, 2, 8}));
}

TEST(Workloads, CommMatrixRenderable) {
  Options opts;
  opts.procs = 16;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("MG", opts);
  auto m = trace::commMatrix(run.raw);
  std::string art = trace::renderMatrix(m, 16);
  EXPECT_FALSE(art.empty());
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(Driver, SizeReportOrdersToolsOnRegularCode) {
  Options opts;
  opts.procs = 16;
  RunOutput run = runWorkload("LU", opts);
  SizeReport rep = computeSizes(run);
  EXPECT_GT(rep.rawBytes, 0u);
  EXPECT_LT(rep.gzipBytes, rep.rawBytes);
  // Structured compressors beat the byte-stream codec by a lot on LU.
  EXPECT_LT(rep.cypressBytes, rep.gzipBytes / 4);
  EXPECT_LT(rep.scalaBytes, rep.gzipBytes);
  EXPECT_GT(rep.cypressInterSeconds, 0.0);
}

TEST(Driver, CompileStatsPopulated) {
  Options opts;
  opts.procs = 16;
  opts.withRaw = false;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("CG", opts);
  EXPECT_GT(run.compileStats.numNodes, 0);
  EXPECT_GT(run.compileStats.numLoops, 0);
  EXPECT_GT(run.compileStats.cstSeconds, 0.0);
  EXPECT_GT(run.plainCompileSeconds, 0.0);
}

TEST(Driver, BaselineMeasurement) {
  Options opts;
  opts.procs = 8;
  opts.measureBaseline = true;
  opts.withScala = false;
  opts.withScala2 = false;
  RunOutput run = runWorkload("JACOBI", opts);
  EXPECT_GT(run.baselineWallSeconds, 0.0);
  EXPECT_GT(run.tracedWallSeconds, 0.0);
}

}  // namespace
}  // namespace cypress::driver
