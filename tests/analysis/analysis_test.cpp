// Tests for dominators, natural loops and the call graph, driven mostly
// through MiniC sources so the CFGs are realistic.
#include <gtest/gtest.h>

#include "analysis/callgraph.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "minic/compile.hpp"

namespace cypress::analysis {
namespace {

using minic::compileProgram;

TEST(Dominators, StraightLine) {
  auto m = compileProgram("func main() { var x = 1; x = x + 1; }");
  const ir::Function& f = *m->function("main");
  DomTree dom = DomTree::build(f);
  EXPECT_EQ(dom.idom(0), 0);
  EXPECT_TRUE(dom.dominates(0, 0));
}

TEST(Dominators, DiamondJoinDominatedByCond) {
  auto m = compileProgram(R"(
    func main() {
      var x = 0;
      if (rank % 2 == 0) { x = 1; } else { x = 2; }
      x = 3;
    })");
  const ir::Function& f = *m->function("main");
  DomTree dom = DomTree::build(f);
  // Block layout: 0 entry(cond), 1 then, 2 else, 3 join.
  ASSERT_EQ(f.blocks.size(), 4u);
  EXPECT_EQ(dom.idom(1), 0);
  EXPECT_EQ(dom.idom(2), 0);
  EXPECT_EQ(dom.idom(3), 0);
  EXPECT_TRUE(dom.dominates(0, 3));
  EXPECT_FALSE(dom.dominates(1, 3));
}

TEST(Dominators, PostDominatorsOfDiamond) {
  auto m = compileProgram(R"(
    func main() {
      var x = 0;
      if (rank % 2 == 0) { x = 1; } else { x = 2; }
      x = 3;
    })");
  const ir::Function& f = *m->function("main");
  DomTree post = DomTree::buildPost(f);
  // The join (block 3) post-dominates the condition and both arms.
  EXPECT_EQ(post.idom(0), 3);
  EXPECT_EQ(post.idom(1), 3);
  EXPECT_EQ(post.idom(2), 3);
  EXPECT_TRUE(post.dominates(3, 0));
}

TEST(Loops, SimpleForLoop) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) {
        mpi_barrier();
      }
    })");
  const ir::Function& f = *m->function("main");
  LoopInfo li = LoopInfo::build(f);
  ASSERT_EQ(li.loops().size(), 1u);
  const Loop& loop = li.loops()[0];
  EXPECT_EQ(loop.depth, 1);
  EXPECT_EQ(loop.parent, -1);
  EXPECT_FALSE(loop.latches.empty());
  EXPECT_FALSE(loop.exitEdges.empty());
  EXPECT_TRUE(li.isHeader(loop.header));
  // Header is the for.cond block, which has an in-loop successor (body).
  EXPECT_TRUE(loop.contains(loop.header));
}

TEST(Loops, NestedLoopsHaveCorrectDepthAndParent) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 4; i = i + 1) {
        for (var j = 0; j < i; j = j + 1) {
          mpi_barrier();
        }
      }
    })");
  const ir::Function& f = *m->function("main");
  LoopInfo li = LoopInfo::build(f);
  ASSERT_EQ(li.loops().size(), 2u);
  const Loop* outer = nullptr;
  const Loop* inner = nullptr;
  for (const Loop& l : li.loops()) {
    if (l.depth == 1) outer = &l;
    if (l.depth == 2) inner = &l;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->parent,
            static_cast<int>(outer - li.loops().data()));
  EXPECT_TRUE(outer->contains(inner->header));
  EXPECT_GT(outer->blocks.size(), inner->blocks.size());
}

TEST(Loops, WhileLoopWithBranchInside) {
  auto m = compileProgram(R"(
    func main() {
      var i = 0;
      while (i < 8) {
        if (i % 2 == 0) { mpi_barrier(); }
        i = i + 1;
      }
    })");
  const ir::Function& f = *m->function("main");
  LoopInfo li = LoopInfo::build(f);
  ASSERT_EQ(li.loops().size(), 1u);
  const Loop& loop = li.loops()[0];
  // Loop body contains the if-diamond blocks.
  EXPECT_GE(loop.blocks.size(), 4u);
}

TEST(Loops, NoLoopsInBranchOnlyCode) {
  auto m = compileProgram(R"(
    func main() {
      if (rank == 0) { mpi_barrier(); }
    })");
  LoopInfo li = LoopInfo::build(*m->function("main"));
  EXPECT_TRUE(li.loops().empty());
}

TEST(CallGraph, EdgesAndPostOrder) {
  auto m = compileProgram(R"(
    func leaf() { mpi_barrier(); }
    func mid() { leaf(); }
    func main() { mid(); leaf(); }
  )");
  CallGraph g = CallGraph::build(*m);
  const int mainN = g.nodeOf("main");
  const int midN = g.nodeOf("mid");
  const int leafN = g.nodeOf("leaf");
  ASSERT_GE(mainN, 0);
  ASSERT_GE(midN, 0);
  ASSERT_GE(leafN, 0);
  EXPECT_FALSE(g.isRecursive(mainN));
  EXPECT_FALSE(g.isRecursive(midN));

  // Bottom-up: leaf before mid before main.
  auto pos = [&](int node) {
    const auto& order = g.postOrder();
    for (size_t i = 0; i < order.size(); ++i)
      if (order[i] == node) return static_cast<int>(i);
    return -1;
  };
  EXPECT_LT(pos(leafN), pos(midN));
  EXPECT_LT(pos(midN), pos(mainN));
}

TEST(CallGraph, DetectsSelfRecursion) {
  auto m = compileProgram(R"(
    func rec(n) { if (n > 0) { rec(n - 1); } }
    func main() { rec(5); }
  )");
  CallGraph g = CallGraph::build(*m);
  EXPECT_TRUE(g.isRecursive(g.nodeOf("rec")));
  EXPECT_FALSE(g.isRecursive(g.nodeOf("main")));
}

TEST(CallGraph, DetectsMutualRecursion) {
  auto m = compileProgram(R"(
    func ping(n) { if (n > 0) { pong(n - 1); } }
    func pong(n) { if (n > 0) { ping(n - 1); } }
    func main() { ping(4); }
  )");
  CallGraph g = CallGraph::build(*m);
  EXPECT_TRUE(g.isRecursive(g.nodeOf("ping")));
  EXPECT_TRUE(g.isRecursive(g.nodeOf("pong")));
  EXPECT_FALSE(g.isRecursive(g.nodeOf("main")));
  EXPECT_EQ(g.sccOf(g.nodeOf("ping")), g.sccOf(g.nodeOf("pong")));
}

TEST(CfgView, PredsMatchSuccs) {
  auto m = compileProgram(R"(
    func main() {
      var i = 0;
      while (i < 3) { i = i + 1; }
    })");
  CfgView cfg(*m->function("main"));
  for (int b = 0; b < cfg.numBlocks(); ++b) {
    for (int s : cfg.succs[static_cast<size_t>(b)]) {
      const auto& preds = cfg.preds[static_cast<size_t>(s)];
      EXPECT_NE(std::find(preds.begin(), preds.end(), b), preds.end());
    }
  }
}

}  // namespace
}  // namespace cypress::analysis
