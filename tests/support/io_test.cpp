// IoBackend / fault-injection tests: the real backend's atomic-write
// discipline, the fault-spec grammar, and the FaultyIoBackend's
// deterministic per-spec counters — the machinery every disk-fault
// suite in the repo builds on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <fstream>

#include "support/error.hpp"
#include "support/io.hpp"

namespace cypress::io {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  // pid suffix: parallel ctest runs each case in its own process.
  const std::string dir =
      (fs::temp_directory_path() / (name + "." + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<uint8_t> bytesOf(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Io, RealBackendRoundtrip) {
  const std::string dir = freshDir("cyp_io_rt");
  IoBackend& be = realIo();
  const auto payload = bytesOf("hello, durable world");

  {
    auto f = be.openWrite(dir + "/a.bin");
    f->write(payload);
    f->sync();
    f->close();
  }
  EXPECT_TRUE(be.exists(dir + "/a.bin"));
  EXPECT_EQ(be.fileSize(dir + "/a.bin"), payload.size());
  EXPECT_EQ(be.readAll(dir + "/a.bin"), payload);

  be.rename(dir + "/a.bin", dir + "/b.bin");
  EXPECT_FALSE(be.exists(dir + "/a.bin"));
  EXPECT_EQ(be.readAll(dir + "/b.bin"), payload);

  be.truncate(dir + "/b.bin", 5);
  EXPECT_EQ(be.readAll(dir + "/b.bin"), bytesOf("hello"));

  be.remove(dir + "/b.bin");
  EXPECT_FALSE(be.exists(dir + "/b.bin"));
  // Removing a missing file is not an error (idempotent cleanup).
  EXPECT_NO_THROW(be.remove(dir + "/b.bin"));

  EXPECT_THROW(be.readAll(dir + "/missing.bin"), IoError);
}

TEST(Io, AppendMode) {
  const std::string dir = freshDir("cyp_io_append");
  IoBackend& be = realIo();
  {
    auto f = be.openWrite(dir + "/log", /*append=*/false);
    f->write(bytesOf("one"));
  }
  {
    auto f = be.openWrite(dir + "/log", /*append=*/true);
    f->write(bytesOf("two"));
  }
  EXPECT_EQ(be.readAll(dir + "/log"), bytesOf("onetwo"));
  {
    // Non-append reopen truncates.
    auto f = be.openWrite(dir + "/log", /*append=*/false);
    f->write(bytesOf("three"));
  }
  EXPECT_EQ(be.readAll(dir + "/log"), bytesOf("three"));
}

TEST(Io, ParseFaultSpecGrammar) {
  IoFaultSpec f = parseIoFaultSpec("enospc@3");
  EXPECT_EQ(f.kind, IoFaultSpec::Kind::Enospc);
  EXPECT_EQ(f.at, 3u);
  EXPECT_TRUE(f.pathSubstr.empty());

  f = parseIoFaultSpec("rename@2:merge.cym");
  EXPECT_EQ(f.kind, IoFaultSpec::Kind::TornRename);
  EXPECT_EQ(f.at, 2u);
  EXPECT_EQ(f.pathSubstr, "merge.cym");

  EXPECT_EQ(parseIoFaultSpec("eio@1").kind, IoFaultSpec::Kind::Eio);
  EXPECT_EQ(parseIoFaultSpec("short@1").kind, IoFaultSpec::Kind::ShortWrite);
  EXPECT_EQ(parseIoFaultSpec("fsync@1").kind, IoFaultSpec::Kind::FsyncFail);

  EXPECT_THROW(parseIoFaultSpec(""), Error);
  EXPECT_THROW(parseIoFaultSpec("enospc"), Error);
  EXPECT_THROW(parseIoFaultSpec("@3"), Error);
  EXPECT_THROW(parseIoFaultSpec("frobnicate@1"), Error);
  EXPECT_THROW(parseIoFaultSpec("enospc@0"), Error);  // ordinals are 1-based
}

TEST(Io, IsDiskFullClassification) {
  EXPECT_TRUE(isDiskFull(ENOSPC));
  EXPECT_TRUE(isDiskFull(EDQUOT));
  EXPECT_TRUE(isDiskFull(EFBIG));
  EXPECT_FALSE(isDiskFull(EIO));
  EXPECT_FALSE(isDiskFull(0));
}

TEST(Io, EnospcFaultLandsHalfThenThrows) {
  const std::string dir = freshDir("cyp_io_enospc");
  FaultyIoBackend be(realIo(), {parseIoFaultSpec("enospc@2")});

  const auto chunk = bytesOf("0123456789");  // 10 bytes, half = 5
  auto f = be.openWrite(dir + "/x");
  f->write(chunk);  // write #1 passes through
  try {
    f->write(chunk);  // write #2: injected ENOSPC
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errnum(), ENOSPC);
    EXPECT_TRUE(isDiskFull(e.errnum()));
  }
  f->close();
  // The realistic torn state: all of write #1, half of write #2.
  EXPECT_EQ(realIo().readAll(dir + "/x"), bytesOf("012345678901234"));
  EXPECT_EQ(be.writesSeen(), 2u);
  EXPECT_EQ(be.faultsFired(), 1u);
}

TEST(Io, EioFaultLandsNothing) {
  const std::string dir = freshDir("cyp_io_eio");
  FaultyIoBackend be(realIo(), {parseIoFaultSpec("eio@1")});
  auto f = be.openWrite(dir + "/x");
  try {
    f->write(bytesOf("doomed"));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.errnum(), EIO);
  }
  f->close();
  EXPECT_EQ(realIo().fileSize(dir + "/x"), 0u);
}

TEST(Io, FsyncFaultFiresOnSyncOnly) {
  const std::string dir = freshDir("cyp_io_fsync");
  FaultyIoBackend be(realIo(), {parseIoFaultSpec("fsync@1")});
  auto f = be.openWrite(dir + "/x");
  EXPECT_NO_THROW(f->write(bytesOf("data")));  // writes unaffected
  EXPECT_THROW(f->sync(), IoError);
  EXPECT_EQ(be.syncsSeen(), 1u);
  EXPECT_EQ(be.faultsFired(), 1u);
}

TEST(Io, PathFilteredCountersAreIndependent) {
  // Each spec counts only the operations whose path matches it, so a
  // fault on the Nth write of one file is unaffected by traffic to
  // other files — this is what lets a test target "the b2 spill"
  // without knowing the global I/O schedule.
  const std::string dir = freshDir("cyp_io_filter");
  FaultyIoBackend be(realIo(), {parseIoFaultSpec("eio@2:target")});

  auto noise = be.openWrite(dir + "/noise");
  auto target = be.openWrite(dir + "/target");
  const auto b = bytesOf("x");
  // Lots of non-matching traffic, which must not advance the counter.
  for (int i = 0; i < 10; ++i) noise->write(b);
  EXPECT_NO_THROW(target->write(b));  // matching op #1
  for (int i = 0; i < 10; ++i) noise->write(b);
  EXPECT_THROW(target->write(b), IoError);  // matching op #2 → fires
  EXPECT_EQ(be.faultsFired(), 1u);
}

TEST(Io, TornRenameTruncatesSourceButReportsSuccess) {
  const std::string dir = freshDir("cyp_io_torn");
  FaultyIoBackend be(realIo(), {parseIoFaultSpec("rename@1:final")});
  {
    auto f = be.openWrite(dir + "/tmp");
    f->write(bytesOf("0123456789"));
    f->sync();
  }
  // The lying filesystem: rename "succeeds" but the data lost its tail.
  EXPECT_NO_THROW(be.rename(dir + "/tmp", dir + "/final"));
  EXPECT_TRUE(be.exists(dir + "/final"));
  EXPECT_EQ(be.readAll(dir + "/final"), bytesOf("01234"));
}

TEST(Io, AtomicWriterNoFileUntilCommit) {
  const std::string dir = freshDir("cyp_io_atomic");
  IoBackend& be = realIo();
  const std::string path = dir + "/artifact.bin";
  {
    AtomicFileWriter w(be, path);
    w.write(bytesOf("partial "));
    w.write(bytesOf("content"));
    EXPECT_FALSE(be.exists(path));  // nothing under the final name yet
    w.commit();
    EXPECT_TRUE(be.exists(path));
  }
  EXPECT_EQ(be.readAll(path), bytesOf("partial content"));
  // The tmp file is gone after commit.
  EXPECT_FALSE(be.exists(path + ".tmp"));
}

TEST(Io, AtomicWriterAbandonLeavesNoFinalFile) {
  const std::string dir = freshDir("cyp_io_abandon");
  IoBackend& be = realIo();
  const std::string path = dir + "/artifact.bin";
  {
    AtomicFileWriter w(be, path);
    w.write(bytesOf("doomed"));
    // No commit: destructor must clean up, not publish.
  }
  EXPECT_FALSE(be.exists(path));
  EXPECT_FALSE(be.exists(path + ".tmp"));
}

TEST(Io, AtomicWriterFaultNeverPublishes) {
  // Whatever fault hits the tmp stream — write, fsync, even a torn
  // rename of the commit itself is out of scope here — the final path
  // must never hold a torn file.
  const std::string dir = freshDir("cyp_io_atomic_fault");
  for (const char* spec : {"enospc@1", "eio@1", "short@1", "fsync@1"}) {
    FaultyIoBackend be(realIo(), {parseIoFaultSpec(spec)});
    const std::string path = dir + "/out-" + std::string(spec).substr(0, 3);
    EXPECT_THROW(writeFileAtomic(be, path, bytesOf("payload")), IoError)
        << spec;
    EXPECT_FALSE(realIo().exists(path)) << spec;
  }
}

TEST(Io, WriteFileAtomicRoundtrip) {
  const std::string dir = freshDir("cyp_io_wfa");
  const auto payload = bytesOf("atomic payload");
  writeFileAtomic(realIo(), dir + "/x", payload);
  EXPECT_EQ(realIo().readAll(dir + "/x"), payload);
}

TEST(Io, CreateDirectoriesIsIdempotent) {
  const std::string dir = freshDir("cyp_io_mkdir");
  IoBackend& be = realIo();
  EXPECT_NO_THROW(be.createDirectories(dir + "/a/b/c"));
  EXPECT_NO_THROW(be.createDirectories(dir + "/a/b/c"));
  writeFileAtomic(be, dir + "/a/b/c/f", bytesOf("x"));
  EXPECT_TRUE(be.exists(dir + "/a/b/c/f"));
}

TEST(Io, PeakRssIsPlausible) {
  const uint64_t rss = peakRssBytes();
  // Any live process has at least a few pages resident; the exact value
  // is platform noise, but zero means the probe is broken.
  EXPECT_GT(rss, 64u * 1024);
}

}  // namespace
}  // namespace cypress::io
