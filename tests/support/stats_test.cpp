#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace cypress {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = static_cast<double>(rng.range(0, 100000)) / 7.0;
    all.add(v);
    (i % 3 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  RunningStats before = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), before.mean());

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStats, SerializeRoundTrip) {
  RunningStats s;
  for (int i = 1; i <= 10; ++i) s.add(i * 1.5);
  ByteWriter w;
  s.serialize(w);
  ByteReader r(w.bytes());
  RunningStats t = RunningStats::deserialize(r);
  EXPECT_EQ(t.count(), s.count());
  EXPECT_DOUBLE_EQ(t.mean(), s.mean());
  EXPECT_DOUBLE_EQ(t.variance(), s.variance());
  EXPECT_DOUBLE_EQ(t.min(), s.min());
  EXPECT_DOUBLE_EQ(t.max(), s.max());
}

TEST(LogHistogram, BucketBoundaries) {
  EXPECT_EQ(LogHistogram::bucketOf(0.0), 0);
  EXPECT_EQ(LogHistogram::bucketOf(1.0), 0);
  EXPECT_EQ(LogHistogram::bucketOf(1.9), 0);
  EXPECT_EQ(LogHistogram::bucketOf(2.0), 1);
  EXPECT_EQ(LogHistogram::bucketOf(3.9), 1);
  EXPECT_EQ(LogHistogram::bucketOf(4.0), 2);
  EXPECT_EQ(LogHistogram::bucketOf(1024.0), 10);
}

TEST(LogHistogram, CountsAndMerge) {
  LogHistogram a, b;
  a.add(1.0);
  a.add(5.0);
  b.add(5.5);
  b.add(1e6);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(2), 2u);
}

TEST(LogHistogram, ApproxMeanWithinBucketError) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(1000.0);
  // 1000 falls in bucket [512, 1024); midpoint representative is 768.
  EXPECT_NEAR(h.approxMean(), 768.0, 1e-9);
}

TEST(LogHistogram, SerializeRoundTripSparse) {
  LogHistogram h;
  h.add(3.0);
  h.add(1e9);
  h.add(1e9);
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.bytes());
  LogHistogram g = LogHistogram::deserialize(r);
  EXPECT_EQ(g.count(), 3u);
  for (int i = 0; i < LogHistogram::kBuckets; ++i) EXPECT_EQ(g.bucket(i), h.bucket(i));
}

}  // namespace
}  // namespace cypress
