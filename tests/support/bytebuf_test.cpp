#include "support/bytebuf.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace cypress {
namespace {

TEST(ByteBuf, RoundTripsFixedWidthInts) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32fixed(0xDEADBEEF);
  w.u64fixed(0x0123456789ABCDEFull);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u + 4u + 8u);

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32fixed(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64fixed(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteBuf, VarintSmallValuesUseOneByte) {
  ByteWriter w;
  w.uv(0);
  w.uv(127);
  EXPECT_EQ(w.size(), 2u);
}

TEST(ByteBuf, VarintRoundTripsBoundaries) {
  const uint64_t cases[] = {0,   1,    127,  128,   16383, 16384,
                            1u << 21, 1ull << 35, 1ull << 56,
                            std::numeric_limits<uint64_t>::max()};
  ByteWriter w;
  for (uint64_t v : cases) w.uv(v);
  ByteReader r(w.bytes());
  for (uint64_t v : cases) EXPECT_EQ(r.uv(), v);
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteBuf, SignedVarintRoundTripsNegatives) {
  const int64_t cases[] = {0, -1, 1, -64, 64, -65, 1000000, -1000000,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  ByteWriter w;
  for (int64_t v : cases) w.sv(v);
  ByteReader r(w.bytes());
  for (int64_t v : cases) EXPECT_EQ(r.sv(), v);
}

TEST(ByteBuf, ZigzagKeepsSmallMagnitudesSmall) {
  ByteWriter w;
  w.sv(-1);
  w.sv(1);
  EXPECT_EQ(w.size(), 2u);
}

TEST(ByteBuf, RoundTripsDoublesExactly) {
  const double cases[] = {0.0, -0.0, 1.5, -3.25e300, 5e-324, 1e9};
  ByteWriter w;
  for (double v : cases) w.f64(v);
  ByteReader r(w.bytes());
  for (double v : cases) {
    double got = r.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
  }
}

TEST(ByteBuf, RoundTripsStrings) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string(1000, 'x'));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
}

TEST(ByteBuf, UnderflowThrows) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u8(), Error);
}

TEST(ByteBuf, TruncatedVarintThrows) {
  std::vector<uint8_t> bad = {0x80, 0x80};  // continuation bits, no end
  ByteReader r(bad);
  EXPECT_THROW(r.uv(), Error);
}

TEST(ByteBuf, RawSpanRoundTrip) {
  ByteWriter w;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  w.raw(payload);
  ByteReader r(w.bytes());
  auto got = r.raw(5);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
  EXPECT_THROW(r.raw(1), Error);
}

}  // namespace
}  // namespace cypress
