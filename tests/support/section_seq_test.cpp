#include "support/section_seq.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace cypress {
namespace {

TEST(SectionSeq, ConstantRunCompressesToOneSection) {
  SectionSeq q;
  for (int i = 0; i < 1000; ++i) q.append(7);
  EXPECT_EQ(q.size(), 1000u);
  ASSERT_EQ(q.sectionCount(), 1u);
  EXPECT_EQ(q.sections()[0], (Section{7, 0, 1000}));
  EXPECT_TRUE(q.isConstant(7));
  EXPECT_FALSE(q.isConstant(8));
}

TEST(SectionSeq, AffineRunCompressesToOneSection) {
  // The paper's <0, k-1, 1> tuple: iteration counts 0,1,2,...,k-1.
  SectionSeq q;
  for (int i = 0; i < 500; ++i) q.append(i);
  ASSERT_EQ(q.sectionCount(), 1u);
  EXPECT_EQ(q.sections()[0], (Section{0, 1, 500}));
}

TEST(SectionSeq, StrideTwoPattern) {
  // Branch outcomes <0, 8, 2> from the paper's Figure 11.
  SectionSeq q;
  for (int i = 0; i <= 8; i += 2) q.append(i);
  ASSERT_EQ(q.sectionCount(), 1u);
  EXPECT_EQ(q.sections()[0], (Section{0, 2, 5}));
  EXPECT_EQ(q.sections()[0].last(), 8);
}

TEST(SectionSeq, NegativeStride) {
  SectionSeq q;
  for (int i = 10; i >= 0; i -= 3) q.append(i);
  ASSERT_EQ(q.sectionCount(), 1u);
  EXPECT_EQ(q.sections()[0], (Section{10, -3, 4}));
}

TEST(SectionSeq, MixedContentSplitsSections) {
  SectionSeq q;
  for (int64_t v : {5, 5, 5, 0, 1, 2, 3, 9}) q.append(v);
  EXPECT_EQ(q.size(), 8u);
  EXPECT_LE(q.sectionCount(), 3u);
  EXPECT_EQ(q.expand(), (std::vector<int64_t>{5, 5, 5, 0, 1, 2, 3, 9}));
}

TEST(SectionSeq, AtMatchesExpand) {
  SectionSeq q;
  std::vector<int64_t> vals = {1, 1, 2, 4, 6, 8, 3, 3, 3, -5};
  for (auto v : vals) q.append(v);
  for (size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(q.at(i), vals[i]);
  EXPECT_THROW(q.at(vals.size()), Error);
}

TEST(SectionSeq, CursorWalksAllValues) {
  SectionSeq q;
  for (int i = 0; i < 100; ++i) q.append(i % 7);
  auto c = q.cursor();
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(c.done());
    EXPECT_EQ(c.next(), i % 7);
  }
  EXPECT_TRUE(c.done());
  EXPECT_THROW(c.next(), Error);
}

TEST(SectionSeq, AppendRunMergesConstantTail) {
  SectionSeq q;
  q.appendRun(3, 10);
  q.appendRun(3, 5);
  ASSERT_EQ(q.sectionCount(), 1u);
  EXPECT_EQ(q.size(), 15u);
  q.appendRun(4, 2);
  EXPECT_EQ(q.size(), 17u);
  EXPECT_EQ(q.at(15), 4);
}

TEST(SectionSeq, PropertyRandomSequencesRoundTrip) {
  // Lossless on arbitrary content, including pathological switches.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    std::vector<int64_t> vals;
    const int n = static_cast<int>(rng.range(0, 300));
    for (int i = 0; i < n; ++i) {
      // Mixture: constants, ramps, noise.
      switch (rng.below(3)) {
        case 0: vals.push_back(rng.range(-5, 5)); break;
        case 1: vals.push_back(i); break;
        default: vals.push_back(rng.range(-1000000, 1000000)); break;
      }
    }
    SectionSeq q = SectionSeq::compress(vals);
    EXPECT_EQ(q.size(), vals.size());
    EXPECT_EQ(q.expand(), vals) << "seed " << seed;

    ByteWriter w;
    q.serialize(w);
    ByteReader r(w.bytes());
    SectionSeq back = SectionSeq::deserialize(r);
    EXPECT_EQ(back, q) << "seed " << seed;
    EXPECT_EQ(back.expand(), vals) << "seed " << seed;
  }
}

TEST(SectionSeq, RangeArithmeticMatchesBruteForce) {
  // prefixSum / countBelow / countInRange against the expanded values,
  // over random mixtures that split into many sections of every stride
  // sign. These back the compressed-domain query engine, so the
  // arithmetic must be exact on arbitrary content.
  for (uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    std::vector<int64_t> vals;
    const int n = static_cast<int>(rng.range(1, 200));
    for (int i = 0; i < n; ++i) {
      switch (rng.below(4)) {
        case 0: vals.push_back(rng.range(-5, 5)); break;
        case 1: vals.push_back(i); break;
        case 2: vals.push_back(100 - 3 * i); break;
        default: vals.push_back(rng.range(-500, 500)); break;
      }
    }
    const SectionSeq q = SectionSeq::compress(vals);

    int64_t sum = 0;
    for (size_t k = 0; k <= vals.size(); ++k) {
      EXPECT_EQ(q.prefixSum(k), sum) << "seed " << seed << " k " << k;
      if (k < vals.size()) sum += vals[k];
    }
    EXPECT_EQ(q.sum(), sum) << "seed " << seed;
    EXPECT_THROW(q.prefixSum(vals.size() + 1), Error);

    for (int64_t v : {-501ll, -5ll, 0ll, 3ll, 99ll, 501ll}) {
      uint64_t below = 0;
      for (int64_t x : vals)
        if (x < v) ++below;
      EXPECT_EQ(q.countBelow(v), below) << "seed " << seed << " v " << v;
    }
    for (int t = 0; t < 10; ++t) {
      const int64_t lo = rng.range(-600, 600);
      const int64_t hi = rng.range(-600, 600);
      uint64_t want = 0;
      for (int64_t x : vals)
        if (x >= lo && x < hi) ++want;
      if (hi <= lo) want = 0;
      EXPECT_EQ(q.countInRange(lo, hi), want)
          << "seed " << seed << " [" << lo << "," << hi << ")";
    }
  }
}

TEST(SectionSeq, RangeArithmeticOnEmptyAndSingleton) {
  SectionSeq empty;
  EXPECT_EQ(empty.sum(), 0);
  EXPECT_EQ(empty.prefixSum(0), 0);
  EXPECT_EQ(empty.countBelow(100), 0u);
  SectionSeq one;
  one.append(42);
  EXPECT_EQ(one.prefixSum(1), 42);
  EXPECT_EQ(one.countBelow(42), 0u);
  EXPECT_EQ(one.countBelow(43), 1u);
  EXPECT_EQ(one.countInRange(42, 43), 1u);
}

TEST(SectionSeq, SerializedSizeIsCompactForRegularData) {
  SectionSeq q;
  for (int i = 0; i < 100000; ++i) q.append(42);
  ByteWriter w;
  q.serialize(w);
  EXPECT_LT(w.size(), 16u);  // one section: tiny regardless of run length
}

}  // namespace
}  // namespace cypress
