#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace cypress {
namespace {

TEST(ThreadPool, SubmitReturnsResultsByFuture) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 20; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, TasksStartInSubmissionOrder) {
  // A single worker drains the FIFO queue strictly in order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(pool.submit([i, &order] { order.push_back(i); }));
  for (auto& f : futs) f.get();
  std::vector<int> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, 4, [&](size_t i) { hits[i]++; }, &pool);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForResultsIndependentOfThreadCount) {
  ThreadPool pool(4);
  const size_t n = 257;
  std::vector<uint64_t> expect(n);
  parallelFor(n, 1, [&](size_t i) { expect[i] = i * 2654435761u; }, &pool);
  for (int threads : {2, 3, 8, 64}) {
    std::vector<uint64_t> got(n);
    parallelFor(n, threads, [&](size_t i) { got[i] = i * 2654435761u; }, &pool);
    EXPECT_EQ(got, expect) << "threads=" << threads;
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingLane) {
  ThreadPool pool(4);
  // 16 indices in 4 contiguous lanes of 4; every index >= 5 throws its
  // own index, so lane 1 (indices 4..7) fails first at 5 — that is the
  // exception the submitting thread must see, on every run.
  for (int rep = 0; rep < 10; ++rep) {
    try {
      parallelFor(
          16, 4,
          [](size_t i) {
            if (i >= 5) throw std::runtime_error(std::to_string(i));
          },
          &pool);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "5");
    }
  }
}

TEST(ThreadPool, ParallelForExceptionStillRunsOtherLanes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallelFor(
                   8, 4,
                   [&](size_t i) {
                     if (i == 0) throw std::runtime_error("first");
                     ran++;
                   },
                   &pool),
               std::runtime_error);
  // Lane 0 aborts at index 0; the other three lanes (indices 2..7) run.
  EXPECT_EQ(ran.load(), 6);
}

TEST(ThreadPool, ReusableAcrossStages) {
  // The same pool serves successive, differently-shaped stages — the
  // way the pipeline reuses the shared pool for serialize, flate and
  // merge.
  ThreadPool pool(3);
  std::vector<int> a(100), b(37), c(8);
  parallelFor(a.size(), 8, [&](size_t i) { a[i] = 1; }, &pool);
  parallelFor(b.size(), 2, [&](size_t i) { b[i] = 2; }, &pool);
  parallelFor(c.size(), 8, [&](size_t i) { c[i] = 3; }, &pool);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 100);
  EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0), 74);
  EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0), 24);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Outer tasks fan out again on the same (tiny) pool; the helping wait
  // loop must drain the nested tasks instead of deadlocking.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  parallelFor(
      4, 4,
      [&](size_t) {
        parallelFor(4, 4, [&](size_t) { inner++; }, &pool);
      },
      &pool);
  EXPECT_EQ(inner.load(), 16);
}

TEST(ThreadPool, SharedPoolIsAvailable) {
  std::atomic<int> hits{0};
  parallelFor(32, 4, [&](size_t) { hits++; });
  EXPECT_EQ(hits.load(), 32);
  EXPECT_GE(ThreadPool::shared().workerCount(), 1u);
}

TEST(ThreadPool, ResizeShrinksAndGrows) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4u);
  pool.resize(1);
  EXPECT_EQ(pool.workerCount(), 1u);
  // The shrunken pool still runs everything submitted to it.
  std::atomic<int> hits{0};
  parallelFor(64, 8, [&](size_t) { hits++; }, &pool);
  EXPECT_EQ(hits.load(), 64);
  pool.resize(3);
  EXPECT_EQ(pool.workerCount(), 3u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 12; ++i)
    futs.push_back(pool.submit([i] { return i + 1; }));
  for (int i = 0; i < 12; ++i) EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i + 1);
}

TEST(ThreadPool, ResizeClampsToOneWorker) {
  ThreadPool pool(2);
  pool.resize(0);
  EXPECT_EQ(pool.workerCount(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ResizeDoesNotDropQueuedTasks) {
  // Queue work faster than a 4-worker pool drains it, then shrink while
  // the queue is non-empty: every task must still run exactly once.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i)
    futs.push_back(pool.submit([&done] { done++; }));
  pool.resize(1);
  for (auto& f : futs) f.get();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ConfigureSharedResizesTheSharedPool) {
  const unsigned before = ThreadPool::shared().workerCount();
  ThreadPool::configureShared(2);
  EXPECT_EQ(ThreadPool::shared().workerCount(), 2u);
  // The resized shared pool keeps serving fixed-order fan-outs.
  std::vector<uint64_t> got(100);
  parallelFor(got.size(), 4, [&](size_t i) { got[i] = i; });
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], i);
  ThreadPool::configureShared(before);  // restore for other tests
  EXPECT_EQ(ThreadPool::shared().workerCount(), before);
}

}  // namespace
}  // namespace cypress
