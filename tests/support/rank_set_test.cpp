#include "support/rank_set.hpp"

#include <gtest/gtest.h>

namespace cypress {
namespace {

TEST(RankSet, SingleRank) {
  RankSet s(5);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
}

TEST(RankSet, InsertKeepsSortedUnique) {
  RankSet s;
  s.insert(3);
  s.insert(1);
  s.insert(3);
  s.insert(2);
  EXPECT_EQ(s.ranks(), (std::vector<int32_t>{1, 2, 3}));
}

TEST(RankSet, UniteIsSetUnion) {
  RankSet a = RankSet::range(0, 4);
  RankSet b = RankSet::range(3, 7);
  a.unite(b);
  EXPECT_EQ(a.size(), 8u);
  for (int r = 0; r <= 7; ++r) EXPECT_TRUE(a.contains(r));
}

TEST(RankSet, ContiguousRangeSerializesCompactly) {
  RankSet s = RankSet::range(1, 510);  // the paper's "ranks 1..size-2"
  ByteWriter w;
  s.serialize(w);
  EXPECT_LT(w.size(), 12u);
  ByteReader r(w.bytes());
  RankSet back = RankSet::deserialize(r);
  EXPECT_EQ(back, s);
}

TEST(RankSet, StridedSetSerializesCompactly) {
  RankSet s;
  for (int r = 0; r < 512; r += 2) s.insert(r);  // even ranks
  ByteWriter w;
  s.serialize(w);
  EXPECT_LT(w.size(), 12u);
  ByteReader r(w.bytes());
  EXPECT_EQ(RankSet::deserialize(r), s);
}

TEST(RankSet, IrregularRoundTrip) {
  RankSet s;
  for (int r : {0, 3, 4, 5, 17, 100, 101, 400}) s.insert(r);
  ByteWriter w;
  s.serialize(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(RankSet::deserialize(r), s);
}

TEST(RankSet, EmptyRoundTrip) {
  RankSet s;
  ByteWriter w;
  s.serialize(w);
  ByteReader r(w.bytes());
  EXPECT_TRUE(RankSet::deserialize(r).empty());
}

}  // namespace
}  // namespace cypress
