#include "support/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace cypress {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(q.tryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(q.tryPush(overflow));
  EXPECT_EQ(overflow, 99);  // not moved-from on failure
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.tryPop(), i);
  EXPECT_EQ(q.tryPop(), std::nullopt);
}

TEST(BoundedQueue, PushFailureDoesNotConsumeMoveOnlyItem) {
  BoundedQueue<std::unique_ptr<int>> q(1);
  auto a = std::make_unique<int>(1);
  auto b = std::make_unique<int>(2);
  EXPECT_TRUE(q.tryPush(a));
  EXPECT_EQ(a, nullptr);
  EXPECT_FALSE(q.tryPush(b));
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*b, 2);
}

TEST(BoundedQueue, CloseDrainsPendingThenFailsPushes) {
  BoundedQueue<int> q(8);
  int v = 1;
  EXPECT_TRUE(q.tryPush(v));
  q.close();
  EXPECT_TRUE(q.closed());
  int w = 2;
  EXPECT_FALSE(q.tryPush(w));
  EXPECT_EQ(q.tryPop(), 1);       // pending item survives close
  EXPECT_EQ(q.pop(), std::nullopt);  // then drained + closed -> nullopt
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(1);
  std::thread popper([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  popper.join();
}

// MPMC stress under TSan: every pushed value is popped exactly once,
// capacity is never exceeded, and nothing deadlocks.
TEST(BoundedQueue, MpmcStressDeliversEveryItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(3);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int v = p * kPerProducer + i;
        while (!q.tryPush(v)) std::this_thread::yield();
      }
    });
  }

  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        std::optional<int> v = q.pop();
        if (!v.has_value()) return;
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  constexpr long long kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace cypress
