// Tests for CST construction (paper §III): Algorithm 1 shapes, the
// inter-procedural inline (Algorithm 2), pruning, recursion conversion
// (Figure 8), GID pre-order, serialization, and IR instrumentation.
#include <gtest/gtest.h>

#include "cst/builder.hpp"
#include "cst/tree.hpp"
#include "minic/compile.hpp"
#include "support/error.hpp"

namespace cypress::cst {
namespace {

using minic::compileProgram;

/// Collect nodes of a kind in pre-order.
std::vector<const Node*> nodesOfKind(const Tree& t, NodeKind k) {
  std::vector<const Node*> out;
  for (int g = 0; g < t.numNodes(); ++g)
    if (t.byGid(g)->kind == k) out.push_back(t.byGid(g));
  return out;
}

int countMarkers(const ir::Module& m, ir::InstrKind kind) {
  int n = 0;
  for (const auto& f : m.functions)
    for (const auto& b : f->blocks)
      for (const auto& i : b.instrs)
        if (i.kind == kind) ++n;
  return n;
}

TEST(CstBuilder, StraightLineProgram) {
  auto m = compileProgram(R"(
    func main() {
      mpi_barrier();
      mpi_allreduce(8);
    })");
  Tree t = buildProgramCst(*m);
  ASSERT_EQ(t.root()->children.size(), 2u);
  EXPECT_EQ(t.root()->children[0]->op, ir::MpiOp::Barrier);
  EXPECT_EQ(t.root()->children[1]->op, ir::MpiOp::Allreduce);
  // Pre-order GIDs.
  EXPECT_EQ(t.root()->gid, 0);
  EXPECT_EQ(t.root()->children[0]->gid, 1);
  EXPECT_EQ(t.root()->children[1]->gid, 2);
}

TEST(CstBuilder, LoopBecomesLoopVertex) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) { mpi_barrier(); }
    })");
  Tree t = buildProgramCst(*m);
  ASSERT_EQ(t.root()->children.size(), 1u);
  const Node& loop = *t.root()->children[0];
  EXPECT_EQ(loop.kind, NodeKind::Loop);
  ASSERT_EQ(loop.children.size(), 1u);
  EXPECT_EQ(loop.children[0]->kind, NodeKind::Comm);
}

TEST(CstBuilder, BranchPathsPerArm) {
  auto m = compileProgram(R"(
    func main() {
      if (rank % 2 == 0) { mpi_send(rank + 1, 64, 0); }
      else { mpi_recv(rank - 1, 64, 0); }
    })");
  Tree t = buildProgramCst(*m);
  ASSERT_EQ(t.root()->children.size(), 2u);
  const Node& then = *t.root()->children[0];
  const Node& els = *t.root()->children[1];
  EXPECT_EQ(then.kind, NodeKind::Branch);
  EXPECT_EQ(then.pathIndex, 0);
  EXPECT_EQ(els.kind, NodeKind::Branch);
  EXPECT_EQ(els.pathIndex, 1);
  ASSERT_EQ(then.children.size(), 1u);
  EXPECT_EQ(then.children[0]->op, ir::MpiOp::Send);
  ASSERT_EQ(els.children.size(), 1u);
  EXPECT_EQ(els.children[0]->op, ir::MpiOp::Recv);
  // Distinct structure ids per path (the paper inserts a branch vertex
  // per path).
  EXPECT_NE(then.structId, els.structId);
}

TEST(CstBuilder, EmptyElseArmPruned) {
  auto m = compileProgram(R"(
    func main() {
      if (rank > 0) { mpi_recv(rank - 1, 64, 0); }
    })");
  Tree t = buildProgramCst(*m);
  ASSERT_EQ(t.root()->children.size(), 1u);
  EXPECT_EQ(t.root()->children[0]->kind, NodeKind::Branch);
  EXPECT_EQ(t.root()->children[0]->pathIndex, 0);
}

TEST(CstBuilder, PaperFigure7Shape) {
  // The running example of the paper (Figure 5 -> Figure 7): a loop with
  // send/recv branches and a call to bar() (loop of bcast), a comm-free
  // foo() (pruned), and a reduce under a branch.
  auto m = compileProgram(R"(
    func bar() {
      for (var k = 0; k < 4; k = k + 1) {
        mpi_bcast(0, 64);
      }
    }
    func foo() {
      var sum = 0;
      for (var j = 0; j < 8; j = j + 1) { sum = sum + j; }
    }
    func main() {
      for (var i = 0; i < 3; i = i + 1) {
        if (rank % 2 == 0) { mpi_send(rank + 1, 32, 0); }
        else { mpi_recv(rank - 1, 32, 0); }
        bar();
      }
      foo();
      if (rank % 2 == 0) { mpi_reduce(0, 4); }
    })");
  Tree t = buildProgramCst(*m);

  // Root: [Loop, Branch(then reduce)] — foo() pruned entirely.
  ASSERT_EQ(t.root()->children.size(), 2u);
  const Node& loop = *t.root()->children[0];
  EXPECT_EQ(loop.kind, NodeKind::Loop);
  // Loop children: then-path(send), else-path(recv), call bar.
  ASSERT_EQ(loop.children.size(), 3u);
  EXPECT_EQ(loop.children[0]->kind, NodeKind::Branch);
  EXPECT_EQ(loop.children[0]->children[0]->op, ir::MpiOp::Send);
  EXPECT_EQ(loop.children[1]->kind, NodeKind::Branch);
  EXPECT_EQ(loop.children[1]->children[0]->op, ir::MpiOp::Recv);
  const Node& barInst = *loop.children[2];
  EXPECT_EQ(barInst.kind, NodeKind::Call);
  ASSERT_EQ(barInst.children.size(), 1u);
  EXPECT_EQ(barInst.children[0]->kind, NodeKind::Loop);
  EXPECT_EQ(barInst.children[0]->children[0]->op, ir::MpiOp::Bcast);

  const Node& reduceBr = *t.root()->children[1];
  EXPECT_EQ(reduceBr.kind, NodeKind::Branch);
  EXPECT_EQ(reduceBr.children[0]->op, ir::MpiOp::Reduce);

  // No comm-free vertices survive anywhere.
  for (const Node* n : nodesOfKind(t, NodeKind::Loop)) {
    EXPECT_FALSE(n->children.empty());
  }
}

TEST(CstBuilder, FunctionInlinedPerCallSite) {
  auto m = compileProgram(R"(
    func halo(b) {
      if (rank > 0) { mpi_send(rank - 1, b, 0); }
    }
    func main() {
      halo(64);
      halo(128);
    })");
  Tree t = buildProgramCst(*m);
  auto calls = nodesOfKind(t, NodeKind::Call);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_NE(calls[0]->callInstrId, calls[1]->callInstrId);
  // Both instances contain a full copy of halo's structure.
  for (const Node* c : calls) {
    ASSERT_EQ(c->children.size(), 1u);
    EXPECT_EQ(c->children[0]->kind, NodeKind::Branch);
  }
  // The copies have different GIDs.
  EXPECT_NE(calls[0]->children[0]->gid, calls[1]->children[0]->gid);
}

TEST(CstBuilder, NestedLoops) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 4; i = i + 1) {
        mpi_bcast(0, 8);
        for (var j = 0; j < i; j = j + 1) {
          var r1 = mpi_isend(rank + 1, 16, 0);
          var r2 = mpi_irecv(rank - 1, 16, 0);
          mpi_waitall();
        }
      }
    })");
  Tree t = buildProgramCst(*m);
  const Node& outer = *t.root()->children[0];
  ASSERT_EQ(outer.kind, NodeKind::Loop);
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->op, ir::MpiOp::Bcast);
  const Node& inner = *outer.children[1];
  EXPECT_EQ(inner.kind, NodeKind::Loop);
  ASSERT_EQ(inner.children.size(), 3u);
  EXPECT_EQ(inner.children[0]->op, ir::MpiOp::Isend);
  EXPECT_EQ(inner.children[1]->op, ir::MpiOp::Irecv);
  EXPECT_EQ(inner.children[2]->op, ir::MpiOp::Waitall);
}

TEST(CstBuilder, RecursionBecomesPseudoLoop) {
  // Paper Figure 8.
  auto m = compileProgram(R"(
    func foo(num) {
      if (num == 0) { return; }
      if (num < 8 && num > 3) {
        mpi_bcast(0, 16);
        mpi_reduce(0, 16);
        foo(num - 1);
      } else {
        mpi_bcast(0, 16);
        foo(num - 1);
        mpi_reduce(0, 16);
      }
    }
    func main() { foo(10); }
  )");
  Tree t = buildProgramCst(*m);
  auto loops = nodesOfKind(t, NodeKind::Loop);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_TRUE(loops[0]->recursionLoop);
  EXPECT_EQ(loops[0]->func, "foo");
  // Under the pseudo-loop: branch structure with bcast/reduce leaves; the
  // recursive call sites are elided.
  auto comms = nodesOfKind(t, NodeKind::Comm);
  EXPECT_EQ(comms.size(), 4u);
  EXPECT_EQ(nodesOfKind(t, NodeKind::Call).size(), 1u);  // the outer foo()
}

TEST(CstBuilder, MutualRecursionInlinedOncePerCycle) {
  auto m = compileProgram(R"(
    func ping(n) { if (n > 0) { mpi_barrier(); pong(n - 1); } }
    func pong(n) { if (n > 0) { mpi_allreduce(4); ping(n - 1); } }
    func main() { ping(6); }
  )");
  Tree t = buildProgramCst(*m);
  // ping instance wraps a pseudo-loop; inside it pong is inlined once
  // with its own pseudo-loop; the call back to ping is elided.
  auto loops = nodesOfKind(t, NodeKind::Loop);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_TRUE(loops[0]->recursionLoop);
  EXPECT_TRUE(loops[1]->recursionLoop);
  auto comms = nodesOfKind(t, NodeKind::Comm);
  EXPECT_EQ(comms.size(), 2u);
}

TEST(CstBuilder, GidsArePreOrder) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 2; i = i + 1) {
        if (rank == 0) { mpi_send(1, 8, 0); }
        mpi_barrier();
      }
      mpi_reduce(0, 4);
    })");
  Tree t = buildProgramCst(*m);
  for (int g = 0; g < t.numNodes(); ++g) {
    EXPECT_EQ(t.byGid(g)->gid, g);
    // Parent precedes child in pre-order.
    if (t.byGid(g)->parent != nullptr) {
      EXPECT_LT(t.byGid(g)->parent->gid, g);
    }
  }
}

TEST(CstBuilder, SerializationRoundTrip) {
  auto m = compileProgram(R"(
    func bar() { for (var k = 0; k < 4; k = k + 1) { mpi_bcast(0, 64); } }
    func main() {
      for (var i = 0; i < 3; i = i + 1) {
        if (rank % 2 == 0) { mpi_send(rank + 1, 32, 0); }
        else { mpi_recv(rank - 1, 32, 0); }
        bar();
      }
    })");
  Tree t = buildProgramCst(*m);
  std::string text = t.toText();
  Tree back = Tree::fromText(text);
  EXPECT_EQ(back.toString(), t.toString());
  EXPECT_EQ(back.numNodes(), t.numNodes());
}

TEST(CstBuilder, SerializationRejectsGarbage) {
  EXPECT_THROW(Tree::fromText("garbage"), Error);
  EXPECT_THROW(Tree::fromText("CST1 (0 0"), Error);
}

TEST(CstInstrument, MarkersInsertedAndModuleStillVerifies) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) {
        if (rank > 0) { mpi_recv(rank - 1, 8, 0); }
      }
    })");
  StaticResult r = analyzeAndInstrument(*m);
  EXPECT_NO_THROW(ir::verify(*m));
  // Loop: 1 enter (header->body) + 1 exit (header->exit).
  // Branch then-path: 1 enter + 1 exit; else-path pruned (no markers).
  EXPECT_EQ(countMarkers(*m, ir::InstrKind::StructEnter), 2);
  EXPECT_EQ(countMarkers(*m, ir::InstrKind::StructExit), 2);
  EXPECT_GE(r.stats.numNodes, 4);
  EXPECT_EQ(r.stats.numLoops, 1);
}

TEST(CstInstrument, CommFreeStructuresNotInstrumented) {
  auto m = compileProgram(R"(
    func main() {
      var s = 0;
      for (var i = 0; i < 100; i = i + 1) { s = s + i; }
      mpi_barrier();
    })");
  analyzeAndInstrument(*m);
  EXPECT_EQ(countMarkers(*m, ir::InstrKind::StructEnter), 0);
  EXPECT_EQ(countMarkers(*m, ir::InstrKind::StructExit), 0);
}

TEST(CstInstrument, AnalysisOnlyLeavesIrUntouched) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) { mpi_barrier(); }
    })");
  const std::string before = ir::print(*m);
  buildProgramCst(*m);
  EXPECT_EQ(ir::print(*m), before);
}

TEST(CstInstrument, EmptyElseArmOfCommBranchGetsNoMarkers) {
  auto m = compileProgram(R"(
    func main() {
      if (rank == 0) { mpi_send(1, 8, 0); }
    })");
  analyzeAndInstrument(*m);
  // Only the then-path survives pruning: 1 enter + 1 exit.
  EXPECT_EQ(countMarkers(*m, ir::InstrKind::StructEnter), 1);
  EXPECT_EQ(countMarkers(*m, ir::InstrKind::StructExit), 1);
}

TEST(CstInstrument, StatsCountVertices) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 4; i = i + 1) {
        if (rank % 2 == 0) { mpi_send(rank + 1, 8, 0); }
        else { mpi_recv(rank - 1, 8, 0); }
      }
      mpi_reduce(0, 4);
    })");
  StaticResult r = analyzeAndInstrument(*m);
  EXPECT_EQ(r.stats.numLoops, 1);
  EXPECT_EQ(r.stats.numBranches, 2);
  EXPECT_EQ(r.stats.numCommVertices, 3);
  EXPECT_GE(r.stats.cstSeconds, 0.0);
}

TEST(CstLookup, ChildResolution) {
  auto m = compileProgram(R"(
    func main() {
      for (var i = 0; i < 4; i = i + 1) {
        if (rank % 2 == 0) { mpi_send(rank + 1, 8, 0); }
      }
    })");
  Tree t = buildProgramCst(*m);
  const Node* loop = t.root()->children[0].get();
  ASSERT_EQ(loop->kind, NodeKind::Loop);
  EXPECT_EQ(Tree::childByStruct(t.root(), loop->structId, -1), loop);
  const Node* path = loop->children[0].get();
  EXPECT_EQ(Tree::childByStruct(loop, path->structId, 0), path);
  EXPECT_EQ(Tree::childByStruct(loop, 9999, 0), nullptr);
  const Node* leaf = path->children[0].get();
  EXPECT_EQ(Tree::childByCallSite(path, leaf->callSiteId), leaf);
  EXPECT_EQ(Tree::childByCallSite(path, 12345), nullptr);
}

TEST(CstLookup, EnclosingRecursionLoop) {
  auto m = compileProgram(R"(
    func rec(n) { if (n > 0) { mpi_barrier(); rec(n - 1); } }
    func main() { rec(3); }
  )");
  Tree t = buildProgramCst(*m);
  auto loops = nodesOfKind(t, NodeKind::Loop);
  ASSERT_EQ(loops.size(), 1u);
  const Node* deep = loops[0]->children[0].get();  // branch path inside
  EXPECT_EQ(Tree::enclosingRecursionLoop(deep, "rec"), loops[0]);
  EXPECT_EQ(Tree::enclosingRecursionLoop(deep, "other"), nullptr);
}

}  // namespace
}  // namespace cypress::cst
