// CST + runtime edge cases constructed with the ProgramBuilder frontend:
// early returns inside structures, zero-iteration loops under branches,
// loops exited by return, branches whose join is the loop latch, and
// deep nesting — each must instrument consistently and round-trip
// losslessly through the CYPRESS pipeline.
#include <gtest/gtest.h>

#include "cst/builder.hpp"
#include "cypress/ctt.hpp"
#include "cypress/decompress.hpp"
#include "cypress/merge.hpp"
#include "ir/builder.hpp"
#include "simmpi/engine.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"

namespace cypress::cst {
namespace {

using namespace ir::dsl;
using ir::FunctionBuilder;
using ir::ProgramBuilder;

/// Run the module with raw + CYPRESS observers; assert exact round trip.
void expectPipelineLossless(std::unique_ptr<ir::Module> m, int ranks) {
  StaticResult sr = analyzeAndInstrument(*m);
  simmpi::Engine::Config cfg;
  cfg.numRanks = ranks;
  simmpi::Engine engine(cfg);
  trace::RawTrace raw;
  raw.ranks.resize(static_cast<size_t>(ranks));
  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<std::unique_ptr<core::CttRecorder>> cyps;
  std::vector<std::unique_ptr<trace::TeeObserver>> tees;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < ranks; ++r) {
    raw.ranks[static_cast<size_t>(r)].rank = r;
    raws.push_back(std::make_unique<trace::RawRecorder>(
        raw.ranks[static_cast<size_t>(r)]));
    cyps.push_back(std::make_unique<core::CttRecorder>(sr.cst, r));
    auto tee = std::make_unique<trace::TeeObserver>();
    tee->add(raws.back().get());
    tee->add(cyps.back().get());
    tees.push_back(std::move(tee));
    obs.push_back(tees.back().get());
  }
  vm::run(*m, engine, obs, 1ull << 26);

  std::vector<const core::Ctt*> ctts;
  for (const auto& c : cyps) ctts.push_back(&c->ctt());
  core::MergedCtt merged = core::mergeAll(ctts);
  for (int r = 0; r < ranks; ++r) {
    auto got = core::decompressRank(merged, r);
    const auto& want = raw.ranks[static_cast<size_t>(r)].events;
    ASSERT_EQ(got.size(), want.size()) << "rank " << r;
    for (size_t i = 0; i < want.size(); ++i)
      ASSERT_TRUE(got[i].sameComm(want[i]))
          << "rank " << r << " event " << i << "\n got " << got[i].toString()
          << "\nwant " << want[i].toString();
  }
}

TEST(CstEdge, ReturnInsideLoopBody) {
  // Loop exited by return on iteration 3: no loop-exit marker fires; the
  // recorder must auto-close the open frames at function end.
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.forLoop("i", 0, [](E i) { return std::move(i) < 10; },
            [](FunctionBuilder& b, Var i) {
              b.allreduce(8);
              b.ifThen(v(i) == 3, [](FunctionBuilder& bb) { bb.ret(); });
            });
  expectPipelineLossless(pb.finish(), 3);
}

TEST(CstEdge, ReturnInsideBranchThenMoreCode) {
  // One arm returns; the continuation nests under the other arm in the
  // CST (self-consistent with the runtime, see DESIGN.md).
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.ifThen(rankv() == 0, [](FunctionBuilder& b) {
    b.barrier();
    b.ret();
  });
  f.barrier();
  // Continuation after the early-return arm: p2p among the survivors.
  f.ifThen(rankv() == 1, [](FunctionBuilder& b) { b.send(2, 64, 5); });
  f.ifThen(rankv() == 2, [](FunctionBuilder& b) { b.recv(1, 64, 5); });
  expectPipelineLossless(pb.finish(), 4);
}

TEST(CstEdge, ZeroIterationLoopUnderBranch) {
  // The loop under the branch runs rank-many times — zero for rank 0.
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.ifThen(rankv() % 2 == 0, [](FunctionBuilder& b) {
    b.forLoop("i", 0, [](E i) { return std::move(i) < rankv(); },
              [](FunctionBuilder& bb, Var) { bb.send(0, 8, 0); });
  });
  f.ifThen(rankv() == 0, [](FunctionBuilder& b) {
    b.forLoop("g", 0, [](E g) { return std::move(g) < 2; },
              [](FunctionBuilder& bb, Var) { bb.recv(anySource(), 8, 0); });
  });
  f.barrier();
  expectPipelineLossless(pb.finish(), 4);
}

TEST(CstEdge, BranchAtEndOfLoopBody) {
  // The branch's join is the loop latch; exit markers share the edge
  // with the loop back edge.
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.forLoop("i", 0, [](E i) { return std::move(i) < 6; },
            [](FunctionBuilder& b, Var i) {
              b.allreduce(16);
              b.ifThenElse(v(i) % 2 == 0,
                           [](FunctionBuilder& bb) { bb.bcast(0, 64); },
                           [](FunctionBuilder& bb) { bb.reduce(0, 64); });
            });
  expectPipelineLossless(pb.finish(), 2);
}

TEST(CstEdge, DeepNesting) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.forLoop("a", 0, [](E a) { return std::move(a) < 3; },
            [](FunctionBuilder& b, Var a) {
              b.ifThen(v(a) > 0, [&](FunctionBuilder& b2) {
                b2.forLoop("c", 0, [&](E c) { return std::move(c) < v(a); },
                           [&](FunctionBuilder& b3, Var c) {
                             b3.ifThenElse(
                                 v(c) % 2 == 0,
                                 [](FunctionBuilder& b4) {
                                   b4.forLoop("d", 0,
                                              [](E d) { return std::move(d) < 2; },
                                              [](FunctionBuilder& b5, Var) {
                                                b5.allreduce(8);
                                              });
                                 },
                                 [](FunctionBuilder& b4) { b4.barrier(); });
                           });
              });
            });
  expectPipelineLossless(pb.finish(), 3);
}

TEST(CstEdge, FunctionWithReturnOnlyPath) {
  // Callee whose every path returns explicitly; caller continues after.
  ProgramBuilder pb;
  auto& g = pb.function("maybe", {"n"});
  g.ifThenElse(g.param(0).ref() > 0,
               [](FunctionBuilder& b) {
                 b.allreduce(8);
                 b.ret();
               },
               [](FunctionBuilder& b) { b.ret(); });
  auto& f = pb.function("main");
  f.callFunction("maybe", E(1));  // every rank takes the allreduce path
  f.callFunction("maybe", E(0));  // every rank takes the empty path
  f.barrier();
  expectPipelineLossless(pb.finish(), 3);
}

TEST(CstEdge, WhileLoopDrivenByRankDependentBound) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  auto n = f.declare("n", rankv() % 3);
  f.whileLoop([&] { return n.ref() > 0; },
              [&](FunctionBuilder& b) {
                b.allreduce(8);  // collective inside rank-dependent loop
                b.assign(n, n.ref() - 1);
              });
  f.barrier();
  // Rank-dependent collective counts would deadlock with a real mismatch;
  // with world size 1 this exercises the shape safely.
  expectPipelineLossless(pb.finish(), 1);
}

TEST(CstEdge, InstrumentationCountsMatchStructure) {
  ProgramBuilder pb;
  auto& f = pb.function("main");
  f.forLoop("i", 0, [](E i) { return std::move(i) < 4; },
            [](FunctionBuilder& b, Var) {
              b.ifThen(rankv() == 0, [](FunctionBuilder& bb) { bb.bcast(0, 8); });
              b.allreduce(8);
            });
  auto m = pb.finish();
  StaticResult sr = analyzeAndInstrument(*m);
  int enters = 0, exits = 0;
  for (const auto& fn : m->functions)
    for (const auto& blk : fn->blocks)
      for (const auto& ins : blk.instrs) {
        if (ins.kind == ir::InstrKind::StructEnter) ++enters;
        if (ins.kind == ir::InstrKind::StructExit) ++exits;
      }
  // Loop: 1 enter + 1 exit; kept branch path: 1 enter + 1 exit.
  EXPECT_EQ(enters, 2);
  EXPECT_EQ(exits, 2);
  EXPECT_EQ(sr.stats.numLoops, 1);
  EXPECT_EQ(sr.stats.numBranches, 1);
}

TEST(CstEdge, IrreducibleCfgRejectedLoudly) {
  // Hand-built CFG with a jump into the middle of a loop (irreducible):
  // the structured walker must reject it with a clear error instead of
  // producing a wrong CST.
  auto m = std::make_unique<ir::Module>();
  ir::Function* f = m->addFunction("main");
  const int b0 = f->addBlock("entry");
  const int b1 = f->addBlock("a");
  const int b2 = f->addBlock("b");
  const int b3 = f->addBlock("exit");
  f->blocks[static_cast<size_t>(b0)].term =
      ir::Terminator::condBr(ir::Expr::rank(), b1, b2);
  f->blocks[static_cast<size_t>(b1)].instrs.push_back(
      ir::Instr::mpi(ir::MpiOp::Barrier, {}));
  f->blocks[static_cast<size_t>(b1)].term =
      ir::Terminator::condBr(ir::Expr::rank(), b2, b3);
  f->blocks[static_cast<size_t>(b2)].instrs.push_back(
      ir::Instr::mpi(ir::MpiOp::Barrier, {}));
  f->blocks[static_cast<size_t>(b2)].term =
      ir::Terminator::condBr(ir::Expr::rank(), b1, b3);  // cross edge
  f->blocks[static_cast<size_t>(b3)].term = ir::Terminator::ret();
  m->numberCallSites();
  ir::verify(*m);
  EXPECT_THROW(analyzeAndInstrument(*m), Error);
}

TEST(CstEdge, LoopHeaderWithCommCallRejected) {
  // An MPI call inside a loop-header block would escape the loop vertex;
  // the builder refuses it explicitly.
  auto m = std::make_unique<ir::Module>();
  ir::Function* f = m->addFunction("main");
  f->addVar("i");
  const int b0 = f->addBlock("entry");
  const int h = f->addBlock("header");
  const int body = f->addBlock("body");
  const int exit = f->addBlock("exit");
  f->blocks[static_cast<size_t>(b0)].instrs.push_back(
      ir::Instr::assign(0, ir::Expr::constant(0)));
  f->blocks[static_cast<size_t>(b0)].term = ir::Terminator::br(h);
  f->blocks[static_cast<size_t>(h)].instrs.push_back(
      ir::Instr::mpi(ir::MpiOp::Barrier, {}));  // call in header
  f->blocks[static_cast<size_t>(h)].term = ir::Terminator::condBr(
      ir::Expr::binary(ir::BinOp::Lt, ir::Expr::var(0), ir::Expr::constant(3)),
      body, exit);
  f->blocks[static_cast<size_t>(body)].instrs.push_back(ir::Instr::assign(
      0, ir::Expr::binary(ir::BinOp::Add, ir::Expr::var(0), ir::Expr::constant(1))));
  f->blocks[static_cast<size_t>(body)].term = ir::Terminator::br(h);
  f->blocks[static_cast<size_t>(exit)].term = ir::Terminator::ret();
  m->numberCallSites();
  ir::verify(*m);
  EXPECT_THROW(analyzeAndInstrument(*m), Error);
}

}  // namespace
}  // namespace cypress::cst
