// Figure 20: LESlie3d communication patterns extracted from CYPRESS
// traces at 32 and 64 processes. The matrices are computed from the
// *decompressed* CYPRESS trace, demonstrating the paper's analysis use
// case, then checked against the raw trace.
#include <cstdio>

#include "bench_util.hpp"
#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "trace/matrix.hpp"

using namespace cypress;

namespace {

void show(int procs) {
  driver::Options opts;
  opts.procs = procs;
  opts.withScala = false;
  opts.withScala2 = false;
  driver::RunOutput run = driver::runWorkload("LESLIE3D", opts);

  core::MergedCtt merged = driver::mergeCypress(run);
  trace::RawTrace decompressed = core::decompressAll(merged, procs);
  auto m = trace::commMatrix(decompressed);
  auto rawM = trace::commMatrix(run.raw);
  const bool identical = m == rawM;

  std::printf("\nLESlie3d, %d processes (matrix from decompressed CYPRESS trace;"
              " matches raw trace: %s)\n",
              procs, identical ? "yes" : "NO!");
  // Neighbour list of rank 0 (the paper calls out 0 -> {1, 2, 8} at 32).
  std::printf("rank 0 communicates with:");
  for (size_t j = 0; j < m[0].size(); ++j)
    if (m[0][j] > 0) std::printf(" %zu", j);
  std::printf("\n%s", trace::renderMatrix(m, procs > 32 ? 64 : 32).c_str());
}

}  // namespace

int main() {
  bench::header("Figure 20 — LESlie3d communication patterns (32/64 procs)",
                "Fig. 20(a)-(b), SC'14 CYPRESS paper");
  show(32);
  show(64);
  return 0;
}
