// Figure 18: inter-process trace compression (merge) time in seconds —
// the master-slave alignment of the dynamic tools versus CYPRESS's
// template-guided tree merge.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/pipeline.hpp"
#include "scalatrace/inter.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

int main() {
  bench::header("Figure 18 — inter-process compression time (seconds)",
                "Fig. 18, SC'14 CYPRESS paper");
  bench::row({"program", "procs", "ScalaTrace", "ScalaTrace2", "Cypress"});

  for (const std::string& name : std::vector<std::string>{"BT", "CG", "LU", "MG", "SP"}) {
    const auto& w = workloads::get(name);
    for (int procs : w.paperProcCounts) {
      driver::Options opts;
      opts.procs = procs;
      opts.withRaw = false;
      driver::RunOutput run = driver::runWorkload(name, opts);
      driver::SizeReport rep = driver::computeSizes(run);
      bench::row({name, std::to_string(procs), bench::secs(rep.scalaInterSeconds),
                  bench::secs(rep.scala2InterSeconds),
                  bench::secs(rep.cypressInterSeconds)});
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
