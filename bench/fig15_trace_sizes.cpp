// Figure 15: total communication trace sizes (KB) of the NPB programs
// under Gzip, ScalaTrace, ScalaTrace-2 (+Gzip), and CYPRESS (+Gzip),
// across the paper's process counts.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

int main() {
  bench::header("Figure 15 — NPB trace sizes per tool (KB)",
                "Fig. 15(a)-(h), SC'14 CYPRESS paper");
  bench::row({"program", "procs", "Gzip", "ScalaTrace", "ScalaTr2",
              "ScalaTr2+Gz", "Cypress", "Cypress+Gz"});

  for (const std::string& name : workloads::npbNames()) {
    const auto& w = workloads::get(name);
    for (int procs : w.paperProcCounts) {
      driver::Options opts;
      opts.procs = procs;
      driver::RunOutput run = driver::runWorkload(name, opts);
      driver::SizeReport rep = driver::computeSizes(run);
      bench::row({name, std::to_string(procs), bench::kb(rep.gzipBytes),
                  bench::kb(rep.scalaBytes), bench::kb(rep.scala2Bytes),
                  bench::kb(rep.scala2GzipBytes), bench::kb(rep.cypressBytes),
                  bench::kb(rep.cypressGzipBytes)});
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
