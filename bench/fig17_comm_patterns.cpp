// Figure 17: communication-volume matrices of MG and SP at 64 processes
// (the gray-scale heat maps of the paper, rendered in ASCII).
#include <cstdio>

#include "bench_util.hpp"
#include "driver/pipeline.hpp"
#include "trace/matrix.hpp"

using namespace cypress;

namespace {

void show(const std::string& name) {
  driver::Options opts;
  opts.procs = 64;
  opts.withScala = false;
  opts.withScala2 = false;
  opts.withCypress = false;
  driver::RunOutput run = driver::runWorkload(name, opts);
  auto m = trace::commMatrix(run.raw);

  uint64_t total = 0, maxCell = 0;
  size_t pairs = 0;
  for (const auto& rowV : m)
    for (uint64_t v : rowV) {
      total += v;
      maxCell = std::max(maxCell, v);
      if (v) ++pairs;
    }
  std::printf("\n%s, 64 processes: %zu communicating pairs, total %s, max pair %s\n",
              name.c_str(), pairs, humanBytes(total).c_str(),
              humanBytes(maxCell).c_str());
  std::printf("%s", trace::renderMatrix(m, 64).c_str());
}

}  // namespace

int main() {
  bench::header("Figure 17 — communication patterns of MG and SP (64 procs)",
                "Fig. 17(a)-(b), SC'14 CYPRESS paper");
  show("MG");
  show("SP");
  return 0;
}
