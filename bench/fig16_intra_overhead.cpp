// Figure 16: intra-process compression overhead — per-tool hook CPU time
// relative to the untraced run, and per-process compressor memory.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

int main() {
  bench::header(
      "Figure 16 — intra-process compression overhead (time %, memory KB/proc)",
      "Fig. 16(a)-(f), SC'14 CYPRESS paper");
  bench::row({"program", "procs", "t%Scala", "t%Scala2", "t%Cypress",
              "memScala", "memScala2", "memCypress"});

  for (const std::string& name :
       std::vector<std::string>{"BT", "CG", "FT", "LU", "MG", "SP"}) {
    const auto& w = workloads::get(name);
    for (int procs : w.paperProcCounts) {
      driver::Options opts;
      opts.procs = procs;
      opts.withRaw = false;
      driver::RunOutput run = driver::runWorkload(name, opts);
      // Overhead relative to the application's execution time on the
      // modeled cluster: total rank-seconds of simulated time versus the
      // measured CPU seconds spent inside each tool's hooks.
      double rankSeconds = 0.0;
      for (uint64_t c : run.runStats.rankClockNs)
        rankSeconds += static_cast<double>(c) * 1e-9;
      auto timePct = [&](double s) {
        return rankSeconds > 0 ? 100.0 * s / rankSeconds : 0.0;
      };
      bench::row({name, std::to_string(procs),
                  bench::pct(timePct(run.scalaIntraSeconds())),
                  bench::pct(timePct(run.scala2IntraSeconds())),
                  bench::pct(timePct(run.cypressIntraSeconds())),
                  bench::kb(run.scalaMemoryPerRank()),
                  bench::kb(run.scala2MemoryPerRank()),
                  bench::kb(run.cypressMemoryPerRank())});
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "Time%% = per-rank compression-hook CPU time relative to the simulated\n"
      "application time (total rank-seconds on the modeled cluster).\n"
      "Memory = average per-process compressor footprint.\n");
  return 0;
}
