// Micro-benchmarks (google-benchmark) for the compression kernels: the
// per-event hook cost of each recorder, stride-sequence appends, CTT
// merging, ScalaTrace alignment, and flate throughput.
#include <benchmark/benchmark.h>

#include "cst/builder.hpp"
#include "cypress/ctt.hpp"
#include "cypress/merge.hpp"
#include "flate/flate.hpp"
#include "minic/compile.hpp"
#include "scalatrace/inter.hpp"
#include "scalatrace/recorder.hpp"
#include "support/rng.hpp"
#include "support/section_seq.hpp"
#include "trace/observer.hpp"

namespace {

using namespace cypress;

trace::Event makeEvent(int i) {
  trace::Event e;
  e.op = ir::MpiOp::Send;
  e.peer = 1;
  e.bytes = 4096;
  e.tag = i % 4;
  e.callSiteId = 7;
  e.durationNs = 1000 + static_cast<uint64_t>(i % 13);
  e.computeNs = 500;
  return e;
}

void BM_SectionSeqAppendConstant(benchmark::State& state) {
  for (auto _ : state) {
    SectionSeq s;
    for (int i = 0; i < 1024; ++i) s.append(42);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SectionSeqAppendConstant);

void BM_SectionSeqAppendRandom(benchmark::State& state) {
  Rng rng(1);
  std::vector<int64_t> vals(1024);
  for (auto& v : vals) v = rng.range(0, 1 << 20);
  for (auto _ : state) {
    SectionSeq s;
    for (int64_t v : vals) s.append(v);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SectionSeqAppendRandom);

/// Per-event cost of the CYPRESS recorder on a regular event stream: the
/// quantity behind the paper's 1.58% average intra-process overhead.
void BM_CypressRecorderPerEvent(benchmark::State& state) {
  auto m = minic::compileProgram(R"(
    func main() {
      for (var i = 0; i < 10; i = i + 1) { mpi_send(rank + 1, 4096, 0); }
    })");
  cst::StaticResult sr = cst::analyzeAndInstrument(*m);
  core::CttRecorder rec(sr.cst, 0);
  rec.onStructEnter(0, -1);
  trace::Event e = makeEvent(0);
  e.callSiteId = 0;
  e.tag = 0;
  for (auto _ : state) {
    rec.onEvent(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CypressRecorderPerEvent);

/// Per-event cost of ScalaTrace's greedy window search on the same
/// stream.
void BM_ScalaTraceRecorderPerEvent(benchmark::State& state) {
  scalatrace::Recorder rec(0, scalatrace::Recorder::Options(scalatrace::Flavor::V1));
  int i = 0;
  for (auto _ : state) {
    rec.onEvent(makeEvent(i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalaTraceRecorderPerEvent);

void BM_FlateCompressTraceLike(benchmark::State& state) {
  std::string record = "MPI_Send dst=12 bytes=4096 tag=7 comm=0\n";
  std::string buf;
  for (int i = 0; i < 1000; ++i) buf += record;
  std::vector<uint8_t> data(buf.begin(), buf.end());
  for (auto _ : state) {
    auto c = flate::compress(data);
    benchmark::DoNotOptimize(c);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_FlateCompressTraceLike);

void BM_FlateRoundTripRandom(benchmark::State& state) {
  Rng rng(3);
  std::vector<uint8_t> data(1 << 16);
  for (auto& b : data) b = static_cast<uint8_t>(rng.below(64));
  for (auto _ : state) {
    auto c = flate::compress(data, flate::Level::Fast);
    auto d = flate::decompress(c);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_FlateRoundTripRandom);

/// Pairwise CTT merge cost (the O(n) comparison of the paper) as a
/// function of the number of processes merged.
void BM_CypressMerge(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  auto m = minic::compileProgram(R"(
    func main() {
      for (var i = 0; i < 64; i = i + 1) {
        if (rank < size - 1) { mpi_send(rank + 1, 512, 0); }
        if (rank > 0)        { mpi_recv(rank - 1, 512, 0); }
      }
    })");
  cst::StaticResult sr = cst::analyzeAndInstrument(*m);
  std::vector<std::unique_ptr<core::CttRecorder>> recs;
  for (int r = 0; r < ranks; ++r) {
    recs.push_back(std::make_unique<core::CttRecorder>(sr.cst, r));
    // Populate a plausible CTT without running the VM: events only.
    trace::Event e = makeEvent(0);
    e.callSiteId = 0;
    recs.back()->onStructEnter(0, -1);
    recs.back()->onStructEnter(1, -1);
    for (int i = 0; i < 64; ++i) recs.back()->onEvent(e);
    recs.back()->onStructExit(1);
    recs.back()->onStructExit(0);
    recs.back()->onFinalize();
  }
  for (auto _ : state) {
    std::vector<const core::Ctt*> ctts;
    for (const auto& r : recs) ctts.push_back(&r->ctt());
    auto merged = core::mergeAll(ctts);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * ranks);
}
BENCHMARK(BM_CypressMerge)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
