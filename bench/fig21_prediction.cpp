// Figure 21: LESlie3d execution-time prediction — measured time on the
// simulated cluster vs SIM-MPI replay of the decompressed CYPRESS trace,
// plus the communication-time share.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "cypress/decompress.hpp"
#include "driver/pipeline.hpp"
#include "replay/simulator.hpp"

using namespace cypress;

int main() {
  bench::header(
      "Figure 21 — LESlie3d measured vs predicted execution time (SIM-MPI)",
      "Fig. 21, SC'14 CYPRESS paper");
  bench::row({"procs", "measured(ms)", "predicted(ms)", "error", "comm%",
              "timed(ms)"});

  double errSum = 0.0;
  int count = 0;
  for (int procs : {32, 64, 128, 256, 512}) {
    driver::Options opts;
    opts.procs = procs;
    opts.withScala = false;
    opts.withScala2 = false;
    opts.engine.jitter = 0.05;
    driver::RunOutput run = driver::runWorkload("LESLIE3D", opts);

    core::MergedCtt merged = driver::mergeCypress(run);
    trace::RawTrace decompressed = core::decompressAll(merged, procs);
    replay::Prediction p = replay::simulate(decompressed);
    replay::Prediction timed = replay::simulateRecordedTimes(decompressed);

    const double measuredMs = static_cast<double>(run.runStats.executionNs) / 1e6;
    const double predictedMs = static_cast<double>(p.predictedNs) / 1e6;
    const double err = std::abs(predictedMs - measuredMs) / measuredMs * 100.0;
    errSum += err;
    ++count;
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof a, "%.2f", measuredMs);
    std::snprintf(b, sizeof b, "%.2f", predictedMs);
    std::snprintf(c, sizeof c, "%.2f", static_cast<double>(timed.predictedNs) / 1e6);
    bench::row({std::to_string(procs), a, b, bench::pct(err),
                bench::pct(p.commPercent()), c});
    std::fflush(stdout);
  }
  std::printf("\naverage prediction error: %.2f%% (paper reports 5.9%%)\n",
              errSum / count);
  return 0;
}
