// Shared table-printing helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "support/strings.hpp"

namespace cypress::bench {

inline void header(const std::string& title, const std::string& paperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  (reproduces %s)\n", paperRef.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string kb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(bytes) / 1024.0);
  return buf;
}

inline std::string pct(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", p);
  return buf;
}

inline std::string secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", s);
  return buf;
}

}  // namespace cypress::bench
