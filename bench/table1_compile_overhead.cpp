// Table I: compilation overhead of the CYPRESS static phase — compile
// time without and with CST construction + instrumentation.
#include <cstdio>

#include "bench_util.hpp"
#include "cst/builder.hpp"
#include "minic/compile.hpp"
#include "support/timer.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

int main() {
  bench::header("Table I — compilation overhead of CYPRESS (seconds)",
                "Table I, SC'14 CYPRESS paper");
  bench::row({"program", "w/o Cypress", "w/ Cypress", "overhead", "CST us",
              "CST nodes"});

  const int kReps = 50;  // compile times are microseconds; average many
  for (const std::string& name : workloads::npbNames()) {
    const auto& w = workloads::get(name);
    const int procs = w.paperProcCounts[0];
    const std::string src = w.source(procs, 1);

    Stopwatch plain;
    for (int i = 0; i < kReps; ++i) {
      auto m = minic::compileProgram(src);
      (void)m;
    }
    const double plainSec = plain.seconds() / kReps;

    Stopwatch full;
    int nodes = 0;
    for (int i = 0; i < kReps; ++i) {
      auto m = minic::compileProgram(src);
      cst::StaticResult sr = cst::analyzeAndInstrument(*m);
      nodes = sr.stats.numNodes;
    }
    const double fullSec = full.seconds() / kReps;

    const double ovh = plainSec > 0 ? 100.0 * (fullSec - plainSec) / plainSec : 0;
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof a, "%.6f", plainSec);
    std::snprintf(b, sizeof b, "%.6f", fullSec);
    std::snprintf(c, sizeof c, "%.1f", (fullSec - plainSec) * 1e6);
    bench::row({name, a, b, bench::pct(ovh), c, std::to_string(nodes)});
    std::fflush(stdout);
  }
  std::printf(
      "\nNote: the MiniC frontend has no optimizer, so the base compile is\n"
      "microseconds and percentages overstate the relative cost. The paper's\n"
      "claim is about the absolute CST cost (max 0.25 s on real codes); here\n"
      "the CST phase costs tens of microseconds per program.\n");
  return 0;
}
