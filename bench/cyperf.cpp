// cyperf — end-to-end pipeline stage timings across thread counts.
//
// Times each stage of the trace→compress→merge pipeline (compile, run,
// build, merge, serialize, flate) on fig15 NPB workloads at procs >= 32
// for threads in {1,2,4,8}, prints a table, and writes
// BENCH_pipeline.json so future changes have a perf trajectory to
// regress against. The post-run stages use the streaming sink chain
// (flate::StreamingCompressor over serializeTo) — the same dataflow the
// driver ships — so no stage materializes a full serialized trace; the
// rss_peak_kb trajectory regresses that property. Three extra sections:
// a streamed-vs-materialized head-to-head on the biggest payload, a
// compressed-size-vs-P sweep (64/512/4096) against the ScalaTrace and
// gzip baselines, and a query-vs-P sweep over the same runs charting
// the compressed-domain comm-matrix query against its
// decompress-then-scan oracle. The traced run fans its epoch-local
// phases out on
// the shared pool (vm/runner.hpp), as do all post-run stages; rows
// where threads exceed hardware_concurrency are flagged (`*`, and
// "oversubscribed" in the JSON) since they cannot show real scaling.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cst/builder.hpp"
#include "cypress/decompress.hpp"
#include "cypress/merge.hpp"
#include "driver/pipeline.hpp"
#include "flate/flate.hpp"
#include "flate/stream.hpp"
#include "minic/compile.hpp"
#include "query/engine.hpp"
#include "support/io.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "trace/observer.hpp"
#include "vm/runner.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

namespace {

struct Stages {
  double compile = 0, run = 0, build = 0, merge = 0, serialize = 0, flate = 0;
  // ru_maxrss (KiB) sampled before AND after each stage, recording the
  // max — so allocations that live only inside a stage still show up in
  // its mark even on platforms where the counter reads current rather
  // than peak RSS. On Linux the kernel counter is a monotone
  // process-wide high-water mark, so rssKb[i] reads as "peak RSS up to
  // and including stage i", and only the first rep of the first row
  // sees fresh marks — later samples inherit whatever high water
  // earlier work already set.
  uint64_t rssKb[6] = {};
  double total() const {
    return compile + run + build + merge + serialize + flate;
  }
};

Stages timeOnce(const std::string& name, int procs, int threads) {
  const workloads::Workload& w = workloads::get(name);
  const std::string source = w.source(procs, 1);
  Stages t;
  Stopwatch sw;

  // Pre-stage RSS sample; stampRss records max(before, after) for the
  // stage just finished and rolls the sample forward.
  uint64_t rssBefore = io::peakRssBytes();
  auto stampRss = [&](int i) {
    const uint64_t after = io::peakRssBytes();
    t.rssKb[i] = std::max(rssBefore, after) >> 10;
    rssBefore = after;
  };

  // compile: MiniC front end + CYPRESS static phase (CST construction).
  auto module = minic::compileProgram(source);
  cst::StaticResult sr = cst::analyzeAndInstrument(*module);
  cst::Tree cst = std::move(sr.cst);
  t.compile = sw.seconds();
  stampRss(0);

  // run: traced simulated execution (epoch-parallel local phases).
  sw.restart();
  simmpi::Engine::Config cfg;
  cfg.numRanks = procs;
  simmpi::Engine engine(cfg);
  trace::RawTrace raw;
  raw.ranks.resize(static_cast<size_t>(procs));
  std::vector<std::unique_ptr<trace::RawRecorder>> raws;
  std::vector<std::unique_ptr<core::CttRecorder>> cypress;
  std::vector<std::unique_ptr<trace::TeeObserver>> tees;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < procs; ++r) {
    auto tee = std::make_unique<trace::TeeObserver>();
    raw.ranks[static_cast<size_t>(r)].rank = r;
    raws.push_back(
        std::make_unique<trace::RawRecorder>(raw.ranks[static_cast<size_t>(r)]));
    tee->add(raws.back().get());
    cypress.push_back(std::make_unique<core::CttRecorder>(cst, r));
    tee->add(cypress.back().get());
    tees.push_back(std::move(tee));
    obs.push_back(tees.back().get());
  }
  vm::RunOptions runOpts;
  runOpts.instructionLimitPerRank = 1ull << 34;
  runOpts.threads = threads;
  vm::run(*module, engine, obs, runOpts);
  t.run = sw.seconds();
  stampRss(1);

  // build: per-rank CYPP trace files, streamed serialize→compress per
  // rank (pool tasks) — the CTT byte stream never exists whole.
  sw.restart();
  std::vector<std::vector<uint8_t>> rankFiles(static_cast<size_t>(procs));
  parallelFor(static_cast<size_t>(procs), threads, [&](size_t r) {
    VectorSink sink;
    flate::StreamingCompressor sc(sink);
    ByteWriter w(sc);
    cypress[r]->ctt().serializeTo(w);
    w.flush();
    sc.finish();
    rankFiles[r] = sink.take();
  });
  t.build = sw.seconds();
  stampRss(2);

  // merge: the O(n log P) inter-process reduction.
  sw.restart();
  std::vector<const core::Ctt*> ctts;
  for (const auto& c : cypress) ctts.push_back(&c->ctt());
  core::MergedCtt merged = core::mergeAll(std::move(ctts), nullptr, threads);
  t.merge = sw.seconds();
  stampRss(3);

  // serialize: walk the merged CYPC + raw CYTR producers through a
  // counting sink — the serialization work without any buffer.
  sw.restart();
  size_t mergedSize = 0, rawSize = 0;
  {
    NullSink null;
    ByteWriter w(null);
    merged.serializeTo(w);
    w.flush();
    mergedSize = w.size();
  }
  {
    NullSink null;
    ByteWriter w(null);
    raw.serializeTo(w);
    w.flush();
    rawSize = w.size();
  }
  t.serialize = sw.seconds();
  stampRss(4);

  // flate: the fused serialize→compress chain over both producers —
  // includes a second serialization walk (the price of never holding
  // the stream), shards overlapping with it on `threads` lanes.
  sw.restart();
  auto streamFlate = [threads](const auto& producer) {
    NullSink null;
    flate::StreamingCompressor sc(null, flate::Level::Default, threads);
    ByteWriter w(sc);
    producer.serializeTo(w);
    w.flush();
    return sc.finish();
  };
  const auto gz = streamFlate(raw);
  const auto cypGz = streamFlate(merged);
  t.flate = sw.seconds();
  stampRss(5);
  (void)gz;
  (void)cypGz;
  (void)rankFiles;
  (void)mergedSize;
  (void)rawSize;
  return t;
}

Stages bestOf(const std::string& name, int procs, int threads, int reps) {
  Stages best;
  uint64_t rep0Rss[6] = {};
  for (int i = 0; i < reps; ++i) {
    Stages t = timeOnce(name, procs, threads);
    if (i == 0) std::copy(std::begin(t.rssKb), std::end(t.rssKb), rep0Rss);
    if (i == 0 || t.total() < best.total()) best = t;
  }
  // Timing takes the best rep; RSS must take the FIRST, because the
  // high-water mark never recedes between reps.
  std::copy(std::begin(rep0Rss), std::end(rep0Rss), best.rssKb);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string outPath = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  const std::vector<std::pair<std::string, int>> targets = {
      {"CG", 64}, {"LU", 64}, {"BT", 64}};
  const std::vector<int> threadCounts = {1, 2, 4, 8};
  const int reps = 3;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  bench::header("cyperf — pipeline stage wall times (s) by thread count",
                "the parallel merge of Fig. 18, SC'14 CYPRESS paper");
  bench::row({"program", "procs", "threads", "compile", "run", "build",
              "merge", "serialize", "flate", "total", "peakRSS"});

  std::string json = "{\n";
  json += "  \"bench\": \"cyperf\",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"shard_bytes\": " + std::to_string(flate::kShardBytes) + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"rss_note\": \"ru_maxrss (KiB) sampled before and after each "
          "stage of rep 0, max recorded; monotone within a process, so only "
          "the first row's marks are unpolluted by earlier rows\",\n";
  json += "  \"entries\": [\n";
  bool first = true;
  bool anyOversubscribed = false;
  for (const auto& [name, procs] : targets) {
    std::vector<Stages> rows;
    for (int threads : threadCounts) {
      // A row asking for more lanes than the host has cores measures
      // scheduler thrash, not scaling — keep it for trend context but
      // flag it so nobody reads a flat line as a regression.
      const bool oversubscribed = static_cast<unsigned>(threads) > hw;
      anyOversubscribed = anyOversubscribed || oversubscribed;
      // Size the worker pool like a real `--threads N` invocation would.
      ThreadPool::configureShared(static_cast<unsigned>(threads));
      const Stages t = bestOf(name, procs, threads, reps);
      rows.push_back(t);
      bench::row({name, std::to_string(procs),
                  std::to_string(threads) + (oversubscribed ? "*" : ""),
                  bench::secs(t.compile), bench::secs(t.run),
                  bench::secs(t.build), bench::secs(t.merge),
                  bench::secs(t.serialize), bench::secs(t.flate),
                  bench::secs(t.total()),
                  std::to_string(t.rssKb[5] >> 10) + "M"});
      std::fflush(stdout);
      char buf[896];
      std::snprintf(
          buf, sizeof buf,
          "%s    {\"workload\": \"%s\", \"procs\": %d, \"threads\": %d, "
          "\"oversubscribed\": %s, "
          "\"stages_s\": {\"compile\": %.6f, \"run\": %.6f, \"build\": %.6f, "
          "\"merge\": %.6f, \"serialize\": %.6f, \"flate\": %.6f}, "
          "\"total_s\": %.6f, "
          "\"rss_peak_kb\": {\"compile\": %llu, \"run\": %llu, "
          "\"build\": %llu, \"merge\": %llu, \"serialize\": %llu, "
          "\"flate\": %llu}}",
          first ? "" : ",\n", name.c_str(), procs, threads,
          oversubscribed ? "true" : "false", t.compile, t.run, t.build,
          t.merge, t.serialize, t.flate, t.total(),
          static_cast<unsigned long long>(t.rssKb[0]),
          static_cast<unsigned long long>(t.rssKb[1]),
          static_cast<unsigned long long>(t.rssKb[2]),
          static_cast<unsigned long long>(t.rssKb[3]),
          static_cast<unsigned long long>(t.rssKb[4]),
          static_cast<unsigned long long>(t.rssKb[5]));
      json += buf;
      first = false;
    }
    // Speedup is only meaningful against the largest thread count the
    // hardware can actually grant.
    size_t lastFit = 0;
    for (size_t i = 0; i < threadCounts.size(); ++i)
      if (static_cast<unsigned>(threadCounts[i]) <= hw) lastFit = i;
    char buf[160];
    if (lastFit == 0) {
      std::snprintf(buf, sizeof buf,
                    "  %s/%d: 1 hardware thread — no scaling measurable "
                    "(rows marked * are oversubscribed)\n",
                    name.c_str(), procs);
    } else {
      std::snprintf(buf, sizeof buf,
                    "  %s/%d: %d-thread speedup %.2fx (run stage %.2fx)\n",
                    name.c_str(), procs, threadCounts[lastFit],
                    rows.front().total() / rows[lastFit].total(),
                    rows.front().run / rows[lastFit].run);
    }
    std::fputs(buf, stdout);
  }
  ThreadPool::configureShared(hw);  // restore the default-sized pool
  json += "\n  ],\n";

  // -- streamed vs materialized: the same serialize+compress work on the
  // biggest payload (the raw CYTR stream), head-to-head. Streamed fuses
  // the serialization walk into the compressor through a sink; the
  // materialized path builds the full byte vector first, as the
  // pipeline did before the streaming dataflow landed. Outputs must be
  // byte-identical; only footprint and overlap differ. (RSS marks here
  // are polluted by the stage rows above — the regressable memory
  // numbers are the first row's rss_peak_kb.)
  bench::header("cyperf — streamed vs materialized serialize+compress",
                "identical output bytes; streamed never holds the stream");
  bench::row({"threads", "payload", "streamed", "materialized", "ratio"});
  driver::Options svmOpts;
  svmOpts.procs = 64;
  svmOpts.withScala = false;
  svmOpts.withScala2 = false;
  const driver::RunOutput svmRun = driver::runWorkload("CG", svmOpts);
  const auto svmPayload = svmRun.raw.serialize();
  bool svmIdentical = true;
  {
    VectorSink sink;
    flate::StreamingCompressor sc(sink);
    ByteWriter w(sc);
    svmRun.raw.serializeTo(w);
    w.flush();
    sc.finish();
    svmIdentical = sink.take() == flate::compress(svmPayload);
  }
  json += "  \"streaming_vs_materialized\": {\"workload\": \"CG\", "
          "\"procs\": 64, \"payload_bytes\": " +
          std::to_string(svmPayload.size()) +
          ", \"identical_output\": " + (svmIdentical ? "true" : "false") +
          ", \"rows\": [";
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool::configureShared(static_cast<unsigned>(threads));
    double streamedS = 0, matS = 0;
    for (int i = 0; i < reps; ++i) {
      Stopwatch sw;
      NullSink null;
      flate::StreamingCompressor sc(null, flate::Level::Default, threads);
      ByteWriter w(sc);
      svmRun.raw.serializeTo(w);
      w.flush();
      sc.finish();
      const double st = sw.seconds();
      sw.restart();
      const auto bytes = svmRun.raw.serialize();
      const auto gz = flate::compress(bytes, flate::Level::Default, threads);
      const double mt = sw.seconds();
      (void)gz;
      if (i == 0 || st < streamedS) streamedS = st;
      if (i == 0 || mt < matS) matS = mt;
    }
    bench::row({std::to_string(threads),
                std::to_string(svmPayload.size() >> 10) + "K",
                bench::secs(streamedS), bench::secs(matS),
                bench::secs(matS / std::max(streamedS, 1e-12))});
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s{\"threads\": %d, \"streamed_s\": %.6f, "
                  "\"materialized_s\": %.6f}",
                  threads == 1 ? "" : ", ", threads, streamedS, matS);
    json += buf;
  }
  ThreadPool::configureShared(hw);
  json += "]},\n";

  // -- compressed size vs P: the paper's scaling claim — CYPRESS stays
  // near-flat as ranks grow while the per-rank baselines grow with P.
  bench::header("cyperf — compressed trace size vs process count",
                "CYPRESS vs ScalaTrace and gzip, Fig. 15 trend at scale");
  bench::row({"program", "procs", "events", "raw", "gzip", "scalatrace",
              "cypress", "cypress+gz"});
  json += "  \"size_vs_procs\": [\n";
  bool sweepFirst = true;
  struct QueryPoint {
    std::string workload;
    int procs = 0;
    size_t events = 0;
    double queryS = 0, scanS = 0;
    bool identical = false;
  };
  std::vector<QueryPoint> queryPoints;
  for (const char* wname : {"JACOBI", "EP"}) {
    for (int procs : {64, 512, 4096}) {
      driver::Options o;
      o.procs = procs;
      o.threads = static_cast<int>(hw);
      o.withScala2 = false;
      const driver::RunOutput run = driver::runWorkload(wname, o);
      const driver::SizeReport rep = driver::computeSizes(run, o.threads);
      bench::row({wname, std::to_string(procs),
                  std::to_string(run.raw.totalEvents()),
                  bench::kb(rep.rawBytes), bench::kb(rep.gzipBytes),
                  bench::kb(rep.scalaBytes), bench::kb(rep.cypressBytes),
                  bench::kb(rep.cypressGzipBytes)});
      std::fflush(stdout);
      char buf[320];
      std::snprintf(
          buf, sizeof buf,
          "%s    {\"workload\": \"%s\", \"procs\": %d, \"events\": %zu, "
          "\"raw_bytes\": %zu, \"gzip_bytes\": %zu, \"scala_bytes\": %zu, "
          "\"cypress_bytes\": %zu, \"cypress_gzip_bytes\": %zu}",
          sweepFirst ? "" : ",\n", wname, procs, run.raw.totalEvents(),
          rep.rawBytes, rep.gzipBytes, rep.scalaBytes, rep.cypressBytes,
          rep.cypressGzipBytes);
      json += buf;
      sweepFirst = false;

      // query stage: the comm-matrix query answered on the compressed
      // form vs the decompress-then-scan oracle, both single-threaded —
      // the committed baseline for the speedup-vs-P curve. The reuse of
      // this sweep's runs keeps the bench wall time flat.
      QueryPoint qp;
      qp.workload = wname;
      qp.procs = procs;
      qp.events = run.raw.totalEvents();
      const core::MergedCtt merged = driver::mergeCypress(run);
      qp.identical = true;
      for (int i = 0; i < reps; ++i) {
        Stopwatch qw;
        const auto cells = query::commMatrix(merged, 1);
        const double qs = qw.seconds();
        qw.restart();
        const trace::RawTrace expanded = core::decompressAll(merged, procs);
        const auto oracle = query::commMatrixFromRaw(expanded);
        const double ss = qw.seconds();
        qp.identical = qp.identical && query::renderMatrix(cells) ==
                                           query::renderMatrix(oracle);
        if (i == 0 || qs < qp.queryS) qp.queryS = qs;
        if (i == 0 || ss < qp.scanS) qp.scanS = ss;
      }
      queryPoints.push_back(std::move(qp));
    }
  }
  json += "\n  ],\n";

  // -- query on compressed vs decompress-then-scan: the compressed-
  // domain engine reads CommRecord repeat counts, so its cost tracks the
  // compressed size while the oracle's tracks the event count — the gap
  // must widen with P.
  bench::header("cyperf — comm-matrix query: compressed vs decompress+scan",
                "single-threaded; identical output required, gap grows with P");
  bench::row({"program", "procs", "events", "query", "decomp+scan", "speedup",
              "identical"});
  json += "  \"query_note\": \"comm-matrix query, best of reps, 1 thread — "
          "the committed baseline; parallel query speedups depend on "
          "hardware_concurrency above\",\n";
  json += "  \"query_vs_decompress\": [\n";
  double headlineSpeedup = 0;
  for (size_t i = 0; i < queryPoints.size(); ++i) {
    const QueryPoint& qp = queryPoints[i];
    const double speedup = qp.scanS / std::max(qp.queryS, 1e-12);
    if (qp.workload == "JACOBI" && qp.procs == 4096) headlineSpeedup = speedup;
    char spd[32];
    std::snprintf(spd, sizeof spd, "%.1fx", speedup);
    bench::row({qp.workload, std::to_string(qp.procs),
                std::to_string(qp.events), bench::secs(qp.queryS),
                bench::secs(qp.scanS), spd, qp.identical ? "yes" : "NO"});
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "%s    {\"workload\": \"%s\", \"procs\": %d, \"events\": %zu, "
        "\"query_s\": %.6f, \"decomp_scan_s\": %.6f, \"speedup\": %.2f, "
        "\"identical\": %s}",
        i == 0 ? "" : ",\n", qp.workload.c_str(), qp.procs, qp.events,
        qp.queryS, qp.scanS, speedup, qp.identical ? "true" : "false");
    json += buf;
  }
  std::printf("  query-on-compressed speedup at P=4096 (JACOBI): %.1fx\n",
              headlineSpeedup);
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cyperf: cannot write %s\n", outPath.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  if (anyOversubscribed)
    std::printf("\n* threads > hardware_concurrency (%u): row measures "
                "oversubscription, not scaling\n", hw);
  std::printf("\nwrote %s\n", outPath.c_str());
  return 0;
}
