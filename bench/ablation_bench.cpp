// Ablations for the design choices called out in DESIGN.md:
//   1. Sliding-window width for leaf-record matching (window=1 is the
//      paper's literal "compare with the last one"; wider windows catch
//      loop-carried parameter cycles such as CG's butterfly peers).
//   2. Time recording mode: mean/stddev vs histogram (size cost of the
//      richer representation).
//   3. flate effort levels on the raw trace (the Gzip baseline's knob).
#include <cstdio>

#include "bench_util.hpp"
#include "cypress/merge.hpp"
#include "driver/pipeline.hpp"
#include "flate/flate.hpp"
#include "minic/compile.hpp"
#include "simmpi/engine.hpp"
#include "vm/runner.hpp"
#include "workloads/workloads.hpp"

using namespace cypress;

namespace {

size_t cypressSizeWith(const std::string& name, int procs, int window,
                       core::TimeMode mode) {
  const auto& w = workloads::get(name);
  auto m = minic::compileProgram(w.source(procs, 1));
  cst::StaticResult sr = cst::analyzeAndInstrument(*m);
  simmpi::Engine::Config cfg;
  cfg.numRanks = procs;
  simmpi::Engine engine(cfg);
  std::vector<std::unique_ptr<core::CttRecorder>> recs;
  std::vector<trace::Observer*> obs;
  for (int r = 0; r < procs; ++r) {
    recs.push_back(std::make_unique<core::CttRecorder>(
        sr.cst, r, core::CttRecorder::Options(mode, window)));
    obs.push_back(recs.back().get());
  }
  vm::run(*m, engine, obs, 1ull << 32);
  std::vector<const core::Ctt*> ctts;
  for (const auto& r : recs) ctts.push_back(&r->ctt());
  return core::mergeAll(ctts).serialize().size();
}

}  // namespace

int main() {
  bench::header("Ablation 1 — leaf-record sliding window width (trace KB)",
                "DESIGN.md §4.3; paper §IV-A's window remark");
  bench::row({"program", "procs", "window=1", "window=8", "window=64"});
  for (const std::string& name : std::vector<std::string>{"CG", "MG", "SP"}) {
    const int procs = 64;
    bench::row({name, std::to_string(procs),
                bench::kb(cypressSizeWith(name, procs, 1,
                                          core::TimeMode::MeanStddev)),
                bench::kb(cypressSizeWith(name, procs, 8,
                                          core::TimeMode::MeanStddev)),
                bench::kb(cypressSizeWith(name, procs, 64,
                                          core::TimeMode::MeanStddev))});
    std::fflush(stdout);
  }

  bench::header("Ablation 2 — time recording mode (trace KB)",
                "paper §IV-A: mean/stddev vs histogram");
  bench::row({"program", "mean/stddev", "histogram"});
  for (const std::string& name : std::vector<std::string>{"BT", "LU", "LESLIE3D"}) {
    const int procs = 64;
    bench::row({name,
                bench::kb(cypressSizeWith(name, procs, 64,
                                          core::TimeMode::MeanStddev)),
                bench::kb(cypressSizeWith(name, procs, 64,
                                          core::TimeMode::Histogram))});
    std::fflush(stdout);
  }

  bench::header("Ablation 3 — flate effort on the raw LU trace (KB)",
                "Gzip baseline effort/ratio trade-off");
  {
    driver::Options opts;
    opts.procs = 64;
    opts.withScala = false;
    opts.withScala2 = false;
    opts.withCypress = false;
    driver::RunOutput run = driver::runWorkload("LU", opts);
    auto raw = run.raw.serialize();
    bench::row({"raw", "fast", "default", "best"});
    bench::row({bench::kb(raw.size()),
                bench::kb(flate::compress(raw, flate::Level::Fast).size()),
                bench::kb(flate::compress(raw, flate::Level::Default).size()),
                bench::kb(flate::compress(raw, flate::Level::Best).size())});
  }
  return 0;
}
