// Figure 19: LESlie3d compressed trace sizes under Gzip, ScalaTrace and
// CYPRESS across process counts.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/pipeline.hpp"

using namespace cypress;

int main() {
  bench::header("Figure 19 — LESlie3d trace sizes (KB)",
                "Fig. 19, SC'14 CYPRESS paper");
  bench::row({"procs", "Gzip", "ScalaTrace", "Cypress"});

  for (int procs : {32, 64, 128, 256, 512}) {
    driver::Options opts;
    opts.procs = procs;
    opts.scale = 8;  // longer run: Gzip grows with events, CYPRESS stays flat
    opts.withScala2 = false;
    driver::RunOutput run = driver::runWorkload("LESLIE3D", opts);
    driver::SizeReport rep = driver::computeSizes(run);
    bench::row({std::to_string(procs), bench::kb(rep.gzipBytes),
                bench::kb(rep.scalaBytes), bench::kb(rep.cypressBytes)});
    std::fflush(stdout);
  }
  return 0;
}
